//! Structural analysis of the controller tree: parents, schedules, unroll
//! factors, memory producer/consumer relations, and N-buffer depths.

use plasticine_ppir::{CtrlBody, CtrlId, Expr, FuncId, InnerOp, Program, RegId, Schedule, SramId};
use std::collections::{BTreeMap, HashSet};

/// How a controller touches a memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// The controller writes the memory.
    Write,
    /// The controller reads the memory.
    Read,
}

/// Result of analysing a program's controller tree.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Parent of each controller (`None` for the root).
    pub parent: Vec<Option<CtrlId>>,
    /// Schedule governing each controller (its parent's schedule; the root
    /// gets `Sequential`).
    pub governing: Vec<Schedule>,
    /// Position of each controller among its siblings.
    pub child_index: Vec<usize>,
    /// Unroll copies of each controller: the product of ancestor counter
    /// `par` factors and, for inner controllers, the `par` factors of all
    /// but the innermost counter of their own chain.
    pub copies: Vec<usize>,
    /// SIMD lanes of each inner controller (innermost counter's `par`).
    pub lanes: Vec<usize>,
    /// Unroll copies attributable to *ancestors only* (excludes the inner
    /// controller's own outer counters). `copies / anc_copies` is the
    /// intra-invocation parallelism; `anc_copies` bounds how many
    /// invocations of the controller may be in flight concurrently.
    pub anc_copies: Vec<usize>,
    /// Controllers accessing each scratchpad, with access kind. Ordered
    /// (`BTreeMap`) so downstream link emission iterates deterministically
    /// and two compiles of the same program produce identical bitstreams.
    pub sram_access: BTreeMap<SramId, Vec<(CtrlId, Access)>>,
    /// Controllers accessing each register. Ordered for the same reason.
    pub reg_access: BTreeMap<RegId, Vec<(CtrlId, Access)>>,
    /// Derived N-buffer depth for each scratchpad.
    pub nbuf: BTreeMap<SramId, usize>,
    /// Depth of each controller (root = 0).
    pub depth: Vec<usize>,
}

impl Analysis {
    /// Runs the analysis.
    pub fn run(p: &Program) -> Analysis {
        let n = p.ctrls().len();
        let mut parent = vec![None; n];
        let mut governing = vec![Schedule::Sequential; n];
        let mut child_index = vec![0usize; n];
        let mut depth = vec![0usize; n];

        // Parent / schedule / order.
        p.walk(|id, d| {
            depth[id.0 as usize] = d;
            if let CtrlBody::Outer { schedule, children } = &p.ctrl(id).body {
                for (ci, &ch) in children.iter().enumerate() {
                    parent[ch.0 as usize] = Some(id);
                    governing[ch.0 as usize] = *schedule;
                    child_index[ch.0 as usize] = ci;
                }
            }
        });

        // Copies and lanes.
        let (copies, lanes, anc_copies) = unroll_factors(p, &parent);

        // Memory accesses.
        let mut sram_access: BTreeMap<SramId, Vec<(CtrlId, Access)>> = BTreeMap::new();
        let mut reg_access: BTreeMap<RegId, Vec<(CtrlId, Access)>> = BTreeMap::new();
        for &cid in &p.inner_ctrls() {
            let CtrlBody::Inner(op) = &p.ctrl(cid).body else {
                continue;
            };
            let rec_sram = |s: SramId, a: Access, m: &mut BTreeMap<_, Vec<_>>| {
                m.entry(s).or_insert_with(Vec::new).push((cid, a));
            };
            let func_reads =
                |f: FuncId,
                 srams: &mut BTreeMap<SramId, Vec<(CtrlId, Access)>>,
                 regs: &mut BTreeMap<RegId, Vec<(CtrlId, Access)>>| {
                    for nodexpr in p.func(f).nodes() {
                        match nodexpr {
                            Expr::Load { mem, .. } => {
                                srams.entry(*mem).or_default().push((cid, Access::Read));
                            }
                            Expr::ReadReg(r) => {
                                regs.entry(*r).or_default().push((cid, Access::Read));
                            }
                            _ => {}
                        }
                    }
                };
            match op {
                InnerOp::Map(m) => {
                    func_reads(m.body, &mut sram_access, &mut reg_access);
                    for w in &m.writes {
                        rec_sram(w.sram, Access::Write, &mut sram_access);
                        // Read-modify-write accumulation also reads.
                        if matches!(w.mode, plasticine_ppir::WriteMode::Accumulate(_)) {
                            rec_sram(w.sram, Access::Read, &mut sram_access);
                        }
                        func_reads(w.addr, &mut sram_access, &mut reg_access);
                    }
                }
                InnerOp::Fold(fl) => {
                    func_reads(fl.map, &mut sram_access, &mut reg_access);
                    for w in &fl.writes {
                        rec_sram(w.sram, Access::Write, &mut sram_access);
                        if matches!(w.mode, plasticine_ppir::WriteMode::Accumulate(_)) {
                            rec_sram(w.sram, Access::Read, &mut sram_access);
                        }
                        func_reads(w.addr, &mut sram_access, &mut reg_access);
                    }
                    for r in fl.out_regs.iter().flatten() {
                        reg_access.entry(*r).or_default().push((cid, Access::Write));
                    }
                }
                InnerOp::Filter(fi) => {
                    func_reads(fi.body, &mut sram_access, &mut reg_access);
                    rec_sram(fi.out, Access::Write, &mut sram_access);
                    reg_access
                        .entry(fi.count_reg)
                        .or_default()
                        .push((cid, Access::Write));
                }
                InnerOp::RegWrite(rw) => {
                    func_reads(rw.func, &mut sram_access, &mut reg_access);
                    reg_access
                        .entry(rw.reg)
                        .or_default()
                        .push((cid, Access::Write));
                }
                InnerOp::LoadTile(t) => {
                    func_reads(t.dram_base, &mut sram_access, &mut reg_access);
                    rec_sram(t.sram, Access::Write, &mut sram_access);
                }
                InnerOp::StoreTile(t) => {
                    func_reads(t.dram_base, &mut sram_access, &mut reg_access);
                    rec_sram(t.sram, Access::Read, &mut sram_access);
                }
                InnerOp::Gather(g) => {
                    func_reads(g.base, &mut sram_access, &mut reg_access);
                    rec_sram(g.indices, Access::Read, &mut sram_access);
                    rec_sram(g.dst, Access::Write, &mut sram_access);
                }
                InnerOp::Scatter(s) => {
                    func_reads(s.base, &mut sram_access, &mut reg_access);
                    rec_sram(s.indices, Access::Read, &mut sram_access);
                    rec_sram(s.src, Access::Read, &mut sram_access);
                }
            }
        }

        let mut an = Analysis {
            parent,
            governing,
            child_index,
            copies,
            lanes,
            anc_copies,
            sram_access,
            reg_access,
            nbuf: BTreeMap::new(),
            depth,
        };
        an.compute_nbuf(p);
        an
    }

    /// Recomputes only the parallelization-dependent vectors (`copies`,
    /// `lanes`, `anc_copies`) for a program whose counter `par` factors
    /// changed but whose structure did not — the situation after
    /// [`Program::with_reduced_par`]. Everything else in the analysis
    /// (tree shape, schedules, memory access sets, N-buffer depths) is
    /// independent of `par`, so degraded-fabric recompilation can restart
    /// from the partition pass instead of re-running the whole analysis.
    pub fn refresh_unroll(&mut self, p: &Program) {
        let (copies, lanes, anc_copies) = unroll_factors(p, &self.parent);
        self.copies = copies;
        self.lanes = lanes;
        self.anc_copies = anc_copies;
    }

    /// Path from a controller up to the root (inclusive).
    fn path_to_root(&self, mut c: CtrlId) -> Vec<CtrlId> {
        let mut path = vec![c];
        while let Some(pa) = self.parent[c.0 as usize] {
            path.push(pa);
            c = pa;
        }
        path
    }

    /// Lowest common ancestor of two controllers, together with the two
    /// children of the LCA on each side (used for pipeline distance).
    pub fn lca(&self, a: CtrlId, b: CtrlId) -> (CtrlId, Option<CtrlId>, Option<CtrlId>) {
        let pa = self.path_to_root(a);
        let pb = self.path_to_root(b);
        let sa: HashSet<u32> = pa.iter().map(|c| c.0).collect();
        // First node on b's path that is also on a's path.
        let lca = *pb.iter().find(|c| sa.contains(&c.0)).expect("common root");
        let side = |path: &[CtrlId]| {
            let pos = path.iter().position(|c| *c == lca).unwrap();
            if pos == 0 {
                None
            } else {
                Some(path[pos - 1])
            }
        };
        (lca, side(&pa), side(&pb))
    }

    /// Derives N-buffer depths (§3.5): a memory written by a child at
    /// dependency-stage `i` and read by a child at dependency-stage `j` of a
    /// coarse-grain-pipelined controller is M-buffered with
    /// `M = (j - i) + 1`, where stages are longest-path depths in the
    /// sibling dependency DAG (edges follow shared-memory dataflow in
    /// program order). Sequential and streaming parents need a single
    /// buffer (streaming communication uses FIFOs instead).
    fn compute_nbuf(&mut self, p: &Program) {
        // Dependency stage of every controller within its parent.
        let stages = self.pipeline_stages(p);
        for (sram, accesses) in &self.sram_access {
            let mut depth = p.sram(*sram).nbuf.unwrap_or(1);
            for (wc, wa) in accesses {
                if *wa != Access::Write {
                    continue;
                }
                for (rc, ra) in accesses {
                    if *ra != Access::Read || rc == wc {
                        continue;
                    }
                    let (lca, wside, rside) = self.lca(*wc, *rc);
                    let CtrlBody::Outer { schedule, .. } = &p.ctrl(lca).body else {
                        continue;
                    };
                    if *schedule != Schedule::Pipelined {
                        continue;
                    }
                    if let (Some(ws), Some(rs)) = (wside, rside) {
                        let wi = stages[ws.0 as usize];
                        let ri = stages[rs.0 as usize];
                        if ri >= wi {
                            depth = depth.max(ri - wi + 1);
                        }
                    }
                }
            }
            self.nbuf.insert(*sram, depth);
        }
    }

    /// Memory footprint (srams touched with the given access) of a whole
    /// subtree.
    pub fn subtree_srams(&self, p: &Program, root: CtrlId, want: Access) -> HashSet<SramId> {
        let mut subtree = HashSet::new();
        let mut stack = vec![root];
        while let Some(c) = stack.pop() {
            subtree.insert(c.0);
            if let CtrlBody::Outer { children, .. } = &p.ctrl(c).body {
                stack.extend(children.iter().copied());
            }
        }
        let mut out = HashSet::new();
        for (s, accs) in &self.sram_access {
            if accs
                .iter()
                .any(|(c, a)| *a == want && subtree.contains(&c.0))
            {
                out.insert(*s);
            }
        }
        out
    }

    /// Longest-path dependency stage of each controller among its siblings
    /// (children with no dependencies are stage 0).
    fn pipeline_stages(&self, p: &Program) -> Vec<usize> {
        let mut stages = vec![0usize; p.ctrls().len()];
        p.walk(|id, _| {
            if let CtrlBody::Outer { children, .. } = &p.ctrl(id).body {
                let writes: Vec<HashSet<SramId>> = children
                    .iter()
                    .map(|&c| self.subtree_srams(p, c, Access::Write))
                    .collect();
                let reads: Vec<HashSet<SramId>> = children
                    .iter()
                    .map(|&c| self.subtree_srams(p, c, Access::Read))
                    .collect();
                for (j, &cj) in children.iter().enumerate() {
                    let mut st = 0usize;
                    for (i, &ci) in children.iter().enumerate().take(j) {
                        if writes[i].intersection(&reads[j]).next().is_some() {
                            st = st.max(stages[ci.0 as usize] + 1);
                        }
                    }
                    stages[cj.0 as usize] = st;
                }
            }
        });
        stages
    }

    /// Dependency edges among the children of an outer controller:
    /// `(producer_idx, consumer_idx, buffer_depth)` for every pair of
    /// children connected by a shared scratchpad in program order. The
    /// buffer depth is the minimum N-buffer depth over the shared
    /// scratchpads — the credit count of the coarse-grain pipeline (§3.5).
    pub fn sibling_deps(&self, p: &Program, parent: CtrlId) -> Vec<(usize, usize, usize)> {
        let CtrlBody::Outer { children, .. } = &p.ctrl(parent).body else {
            return Vec::new();
        };
        let writes: Vec<HashSet<SramId>> = children
            .iter()
            .map(|&c| self.subtree_srams(p, c, Access::Write))
            .collect();
        let reads: Vec<HashSet<SramId>> = children
            .iter()
            .map(|&c| self.subtree_srams(p, c, Access::Read))
            .collect();
        let mut out = Vec::new();
        for (j, rd) in reads.iter().enumerate() {
            for (i, wr) in writes.iter().enumerate().take(j) {
                let shared: Vec<SramId> = wr.intersection(rd).copied().collect();
                if shared.is_empty() {
                    continue;
                }
                let depth = shared.iter().map(|s| self.nbuf_of(*s)).min().unwrap_or(1);
                out.push((i, j, depth));
            }
        }
        out
    }

    /// N-buffer depth for a scratchpad (1 if untouched).
    pub fn nbuf_of(&self, s: SramId) -> usize {
        self.nbuf.get(&s).copied().unwrap_or(1)
    }

    /// Writers of a scratchpad.
    pub fn writers(&self, s: SramId) -> Vec<CtrlId> {
        self.sram_access
            .get(&s)
            .map(|v| {
                v.iter()
                    .filter(|(_, a)| *a == Access::Write)
                    .map(|(c, _)| *c)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Readers of a scratchpad.
    pub fn readers(&self, s: SramId) -> Vec<CtrlId> {
        self.sram_access
            .get(&s)
            .map(|v| {
                v.iter()
                    .filter(|(_, a)| *a == Access::Read)
                    .map(|(c, _)| *c)
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Per-controller unroll factors `(copies, lanes, anc_copies)` — the only
/// part of the analysis that depends on counter `par` values.
fn unroll_factors(p: &Program, parent: &[Option<CtrlId>]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = p.ctrls().len();
    let mut copies = vec![1usize; n];
    let mut lanes = vec![1usize; n];
    let mut anc_copies = vec![1usize; n];
    for id in 0..n {
        let cid = CtrlId(id as u32);
        let ctrl = p.ctrl(cid);
        // Ancestor par product.
        let mut c = 1usize;
        let mut cur = parent[id];
        while let Some(a) = cur {
            c *= p.ctrl(a).total_par();
            cur = parent[a.0 as usize];
        }
        anc_copies[id] = c;
        if ctrl.is_outer() {
            copies[id] = c;
        } else {
            // Own chain: all but innermost multiply copies; innermost is
            // the SIMD width.
            let own = &ctrl.cchain;
            let own_outer: usize = own
                .iter()
                .take(own.len().saturating_sub(1))
                .map(|k| k.par.max(1))
                .product();
            copies[id] = c * own_outer;
            lanes[id] = own.last().map(|k| k.par.max(1)).unwrap_or(1);
        }
    }
    (copies, lanes, anc_copies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_ppir::*;

    /// Pipelined pipeline: load → compute → store over an outer tile loop.
    fn pipelined_program() -> (Program, SramId, SramId) {
        let mut b = ProgramBuilder::new("pipe");
        let d = b.dram("d", DType::F32, 1024);
        let o = b.dram("o", DType::F32, 1024);
        let tile_in = b.sram("tile_in", DType::F32, &[64]);
        let tile_out = b.sram("tile_out", DType::F32, &[64]);

        let mut base = Func::new("base");
        let t = b.fresh_index(); // outer tile index (declared below via counter)
        let _ = t;
        let z = base.konst(Elem::I32(0));
        base.set_outputs(vec![z]);
        let base = b.func(base);

        let ld = b.inner(
            "ld",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: d,
                dram_base: base,
                rows: 1,
                cols: 64,
                dram_row_stride: 64,
                sram: tile_in,
            }),
        );
        let i = b.counter(0, 64, 1, 16);
        let mut body = Func::new("sq");
        let iv = body.index(i.index);
        let v = body.load(tile_in, vec![iv]);
        let sq = body.binary(BinOp::Mul, v, v);
        body.set_outputs(vec![sq]);
        let body = b.func(body);
        let mut addr = Func::new("addr");
        let iv = addr.index(i.index);
        addr.set_outputs(vec![iv]);
        let addr = b.func(addr);
        let comp = b.inner(
            "sq",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: tile_out,
                    addr,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let st = b.inner(
            "st",
            vec![],
            InnerOp::StoreTile(TileTransfer {
                dram: o,
                dram_base: base,
                rows: 1,
                cols: 64,
                dram_row_stride: 64,
                sram: tile_out,
            }),
        );
        let tiles = b.counter(0, 16, 1, 2);
        let root = b.outer(
            "tiles",
            Schedule::Pipelined,
            vec![tiles],
            vec![ld, comp, st],
        );
        let p = b.finish(root).unwrap();
        (p, tile_in, tile_out)
    }

    #[test]
    fn nbuf_reflects_pipeline_distance() {
        let (p, tin, tout) = pipelined_program();
        let an = Analysis::run(&p);
        // tile_in: written by child 0 (ld), read by child 1 (sq) → 2 buffers.
        assert_eq!(an.nbuf_of(tin), 2);
        // tile_out: written by child 1, read by child 2 → 2 buffers.
        assert_eq!(an.nbuf_of(tout), 2);
    }

    #[test]
    fn copies_multiply_ancestor_par() {
        let (p, _, _) = pipelined_program();
        let an = Analysis::run(&p);
        // Root has par 2, so every child has 2 copies.
        for inner in p.inner_ctrls() {
            assert_eq!(an.copies[inner.0 as usize], 2, "{}", p.ctrl(inner).name);
        }
    }

    #[test]
    fn lanes_take_innermost_par() {
        let (p, _, _) = pipelined_program();
        let an = Analysis::run(&p);
        let comp = p
            .inner_ctrls()
            .into_iter()
            .find(|c| p.ctrl(*c).name == "sq")
            .unwrap();
        assert_eq!(an.lanes[comp.0 as usize], 16);
    }

    #[test]
    fn access_sets_are_complete() {
        let (p, tin, tout) = pipelined_program();
        let an = Analysis::run(&p);
        assert_eq!(an.writers(tin).len(), 1);
        assert_eq!(an.readers(tin).len(), 1);
        assert_eq!(an.writers(tout).len(), 1);
        assert_eq!(an.readers(tout).len(), 1);
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let (p, _, _) = pipelined_program();
        let an = Analysis::run(&p);
        let inner = p.inner_ctrls();
        let (lca, a, b) = an.lca(inner[0], inner[2]);
        assert_eq!(lca, p.root());
        assert_eq!(a, Some(inner[0]));
        assert_eq!(b, Some(inner[2]));
    }
}
