//! The serializable configuration artifact ("bitstream").
//!
//! [`Bitstream`] is a versioned, content-hashed snapshot of a full
//! [`CompileOutput`] — machine configuration, virtual design, partition
//! chunks, placement, controller analysis — plus the degradation log of a
//! fault-aware compile. It is everything the simulator needs to run a
//! program *without the compiler*: `plasticine-run compile --out cfg.json`
//! writes one, `run --config cfg.json` loads it and skips compilation
//! entirely (§3.6's "static configuration 'bitstream'", serialized as
//! structured JSON over the in-tree `plasticine-json`).
//!
//! Encoding is canonical: all containers in [`CompileOutput`] are ordered
//! (`Vec`s and `BTreeMap`s), so the same compile always encodes to the
//! same bytes and `content_hash` (FNV-1a over the compact payload) is a
//! stable identity. Per-pass timings are deliberately *not* serialized.

use crate::analysis::{Access, Analysis};
use crate::partition::ChunkStats;
use crate::passes::CompileOutput;
use crate::place::Placement;
use crate::vunit::{VOp, VSrc, VirtualAg, VirtualDesign, VirtualPcu, VirtualPmu};
use plasticine_arch::{AgId, BitstreamError, MachineConfig, SiteId, SwitchId};
use plasticine_ppir::{BankingMode, CtrlId, Program, RegId, Schedule, SramId};
use std::collections::BTreeMap;

use plasticine_json::Json;

/// A serializable compilation artifact: versioned, content-hashed snapshot
/// of a [`CompileOutput`] plus the degradation log.
#[derive(Debug, Clone)]
pub struct Bitstream {
    /// Schema version ([`Bitstream::VERSION`] when produced by this build).
    pub version: u32,
    /// Name of the compiled program.
    pub program_name: String,
    /// [`Program::stable_hash`] of the *original* program — before any
    /// degradation replays. `run --config` checks it against the program
    /// it is about to feed the simulator, so an artifact compiled at a
    /// different scale (or from a different benchmark) is rejected up
    /// front instead of producing garbage.
    pub program_hash: u64,
    /// FNV-1a hash of the compact-encoded payload (everything except this
    /// field). Verified on decode.
    pub content_hash: u64,
    /// One note per parallelization reduction applied by degraded-fabric
    /// compilation, in order. Empty for a pristine compile. Replaying
    /// `Program::with_reduced_par` once per note recovers the program the
    /// artifact was compiled from.
    pub degradations: Vec<String>,
    /// The full compiler output (timings reset to empty — they are not
    /// content).
    pub output: CompileOutput,
}

impl Bitstream {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Wraps a compile output (and the degradation notes that produced
    /// it) into an artifact, computing the content hash. `original` is
    /// the program *before* degradation — the one `recover_program` will
    /// later be handed.
    pub fn new(original: &Program, output: CompileOutput, degradations: Vec<String>) -> Bitstream {
        let mut b = Bitstream {
            version: Bitstream::VERSION,
            program_name: output.config.program_name.clone(),
            program_hash: original.stable_hash(),
            content_hash: 0,
            degradations,
            output,
        };
        b.content_hash = fnv64(b.payload_json().compact().as_bytes());
        b
    }

    /// Whether this artifact was compiled from `program` (same stable
    /// content hash of the pre-degradation program).
    pub fn matches_program(&self, program: &Program) -> bool {
        self.program_hash == program.stable_hash()
    }

    /// Serializes to pretty JSON.
    pub fn encode(&self) -> String {
        let mut fields = vec![(
            "content_hash".to_string(),
            Json::from(format!("{:016x}", self.content_hash)),
        )];
        if let Json::Obj(payload) = self.payload_json() {
            fields.extend(payload);
        }
        Json::Obj(fields).pretty()
    }

    /// Parses an artifact, verifying the schema version and the content
    /// hash.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] on malformed input, an
    /// unsupported version, or a content-hash mismatch (a corrupted or
    /// hand-edited artifact).
    pub fn decode(s: &str) -> Result<Bitstream, BitstreamError> {
        let j = Json::parse(s).map_err(|e| BitstreamError::Format(e.to_string()))?;
        let b = decode_json(&j).map_err(BitstreamError::Format)?;
        let actual = fnv64(b.payload_json().compact().as_bytes());
        if actual != b.content_hash {
            return Err(BitstreamError::Format(format!(
                "content hash mismatch: artifact says {:016x}, payload hashes to {actual:016x}",
                b.content_hash
            )));
        }
        Ok(b)
    }

    /// Writes the encoded artifact to a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Io`] on filesystem failure.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BitstreamError> {
        std::fs::write(path, self.encode()).map_err(BitstreamError::Io)
    }

    /// Reads and decodes an artifact from a file.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on filesystem or decode failure.
    pub fn load(path: &std::path::Path) -> Result<Bitstream, BitstreamError> {
        let s = std::fs::read_to_string(path).map_err(BitstreamError::Io)?;
        Bitstream::decode(&s)
    }

    /// Recovers the program this artifact was compiled from by replaying
    /// the degradation log against `original`: each note halves the
    /// largest parallelization factor, exactly as degraded compilation
    /// did. With an empty log this is a clone of `original`.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError::Format`] if the log does not match
    /// `original` (wrong program, or a log longer than the program's
    /// reducible parallelism).
    pub fn recover_program(&self, original: &Program) -> Result<Program, BitstreamError> {
        let mut cur = original.clone();
        for note in &self.degradations {
            let Some((reduced, desc)) = cur.with_reduced_par() else {
                return Err(BitstreamError::Format(format!(
                    "degradation log does not fit program `{}`: no parallelism left to \
                     reduce for note `{note}`",
                    original.name()
                )));
            };
            if !note.starts_with(&desc) {
                return Err(BitstreamError::Format(format!(
                    "degradation log mismatch for program `{}`: note `{note}` does not \
                     replay as `{desc}`",
                    original.name()
                )));
            }
            cur = reduced;
        }
        Ok(cur)
    }

    /// The hashed payload: every field except `content_hash`.
    fn payload_json(&self) -> Json {
        Json::obj([
            ("version", Json::from(self.version)),
            ("program_name", Json::from(self.program_name.as_str())),
            (
                "program_hash",
                Json::from(format!("{:016x}", self.program_hash)),
            ),
            (
                "degradations",
                Json::Arr(
                    self.degradations
                        .iter()
                        .map(|d| Json::from(d.as_str()))
                        .collect(),
                ),
            ),
            ("config", self.output.config.to_json()),
            ("virtual_design", vdesign_json(&self.output.virtual_design)),
            (
                "chunks",
                Json::Arr(
                    self.output
                        .chunks
                        .iter()
                        .map(|cs| Json::Arr(cs.iter().map(chunk_json).collect()))
                        .collect(),
                ),
            ),
            ("placement", placement_json(&self.output.placement)),
            ("analysis", analysis_json(&self.output.analysis)),
        ])
    }
}

/// FNV-1a over raw bytes — the artifact's content-hash algorithm
/// ([`plasticine_json::hash::fnv1a`]).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    plasticine_json::hash::fnv1a(bytes)
}

// ---- encoding ----

fn ids_json<T: Copy>(ids: &[T], f: impl Fn(T) -> u32) -> Json {
    Json::Arr(ids.iter().map(|&v| Json::from(f(v))).collect())
}

fn vsrc_json(s: &VSrc) -> Json {
    match s {
        VSrc::Op(n) => Json::obj([("Op", Json::from(*n))]),
        VSrc::VecIn(n) => Json::obj([("VecIn", Json::from(*n))]),
        VSrc::ScalIn(n) => Json::obj([("ScalIn", Json::from(*n))]),
        VSrc::Free => Json::from("Free"),
    }
}

fn banking_str(b: BankingMode) -> &'static str {
    match b {
        BankingMode::Strided => "Strided",
        BankingMode::Fifo => "Fifo",
        BankingMode::LineBuffer => "LineBuffer",
        BankingMode::Duplication => "Duplication",
    }
}

fn vdesign_json(v: &VirtualDesign) -> Json {
    let pcu = |u: &VirtualPcu| {
        Json::obj([
            ("name", Json::from(u.name.as_str())),
            ("ctrl", Json::from(u.ctrl.0)),
            (
                "ops",
                Json::Arr(
                    u.ops
                        .iter()
                        .map(|op| {
                            Json::obj([
                                ("srcs", Json::Arr(op.srcs.iter().map(vsrc_json).collect())),
                                ("heavy", Json::from(op.heavy)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("vec_ins", Json::from(u.vec_ins)),
            ("scal_ins", Json::from(u.scal_ins)),
            (
                "outputs",
                Json::Arr(u.outputs.iter().map(vsrc_json).collect()),
            ),
            ("vec_outs", Json::from(u.vec_outs)),
            ("scal_outs", Json::from(u.scal_outs)),
            ("reduction_lanes", Json::from(u.reduction_lanes)),
            ("lanes", Json::from(u.lanes)),
            ("copies", Json::from(u.copies)),
        ])
    };
    let pmu = |m: &VirtualPmu| {
        Json::obj([
            ("sram", Json::from(m.sram.0)),
            ("words", Json::from(m.words)),
            ("nbuf", Json::from(m.nbuf)),
            ("banking", Json::from(banking_str(m.banking))),
            ("write_addr_ops", Json::from(m.write_addr_ops)),
            ("read_addr_ops", Json::from(m.read_addr_ops)),
            ("copies", Json::from(m.copies)),
        ])
    };
    let ag = |a: &VirtualAg| {
        Json::obj([
            ("ctrl", Json::from(a.ctrl.0)),
            ("sparse", Json::from(a.sparse)),
            ("store", Json::from(a.store)),
            ("addr_ops", Json::from(a.addr_ops)),
            ("copies", Json::from(a.copies)),
        ])
    };
    Json::obj([
        ("pcus", Json::Arr(v.pcus.iter().map(pcu).collect())),
        ("pmus", Json::Arr(v.pmus.iter().map(pmu).collect())),
        ("ags", Json::Arr(v.ags.iter().map(ag).collect())),
        ("outers", ids_json(&v.outers, |c| c.0)),
    ])
}

fn chunk_json(c: &ChunkStats) -> Json {
    Json::obj([
        ("stages", Json::from(c.stages)),
        ("max_live", Json::from(c.max_live)),
        ("vec_ins", Json::from(c.vec_ins)),
        ("vec_outs", Json::from(c.vec_outs)),
        ("scal_ins", Json::from(c.scal_ins)),
        ("scal_outs", Json::from(c.scal_outs)),
    ])
}

fn placement_json(pl: &Placement) -> Json {
    let nested =
        |vv: &[Vec<SiteId>]| Json::Arr(vv.iter().map(|v| ids_json(v, |s: SiteId| s.0)).collect());
    Json::obj([
        ("pcu_sites", nested(&pl.pcu_sites)),
        ("pmu_sites", nested(&pl.pmu_sites)),
        (
            "pmus_per_copy",
            Json::Arr(pl.pmus_per_copy.iter().map(|&n| Json::from(n)).collect()),
        ),
        (
            "ag_ids",
            Json::Arr(
                pl.ag_ids
                    .iter()
                    .map(|v| ids_json(v, |a: AgId| a.0))
                    .collect(),
            ),
        ),
        ("outer_switches", ids_json(&pl.outer_switches, |s| s.0)),
    ])
}

fn schedule_str(s: Schedule) -> &'static str {
    match s {
        Schedule::Sequential => "Sequential",
        Schedule::Pipelined => "Pipelined",
        Schedule::Streaming => "Streaming",
    }
}

fn access_str(a: Access) -> &'static str {
    match a {
        Access::Write => "Write",
        Access::Read => "Read",
    }
}

fn accs_json(accs: &[(CtrlId, Access)]) -> Json {
    Json::Arr(
        accs.iter()
            .map(|(c, a)| {
                Json::obj([
                    ("ctrl", Json::from(c.0)),
                    ("access", Json::from(access_str(*a))),
                ])
            })
            .collect(),
    )
}

fn analysis_json(an: &Analysis) -> Json {
    let usizes = |v: &[usize]| Json::Arr(v.iter().map(|&n| Json::from(n)).collect());
    Json::obj([
        (
            "parent",
            Json::Arr(
                an.parent
                    .iter()
                    .map(|p| p.map(|c| Json::from(c.0)).unwrap_or(Json::Null))
                    .collect(),
            ),
        ),
        (
            "governing",
            Json::Arr(
                an.governing
                    .iter()
                    .map(|s| Json::from(schedule_str(*s)))
                    .collect(),
            ),
        ),
        ("child_index", usizes(&an.child_index)),
        ("copies", usizes(&an.copies)),
        ("lanes", usizes(&an.lanes)),
        ("anc_copies", usizes(&an.anc_copies)),
        (
            "sram_access",
            Json::Arr(
                an.sram_access
                    .iter()
                    .map(|(s, accs)| {
                        Json::obj([("sram", Json::from(s.0)), ("accs", accs_json(accs))])
                    })
                    .collect(),
            ),
        ),
        (
            "reg_access",
            Json::Arr(
                an.reg_access
                    .iter()
                    .map(|(r, accs)| {
                        Json::obj([("reg", Json::from(r.0)), ("accs", accs_json(accs))])
                    })
                    .collect(),
            ),
        ),
        (
            "nbuf",
            Json::Arr(
                an.nbuf
                    .iter()
                    .map(|(s, n)| Json::obj([("sram", Json::from(s.0)), ("depth", Json::from(*n))]))
                    .collect(),
            ),
        ),
        ("depth", usizes(&an.depth)),
    ])
}

// ---- decoding ----

type R<T> = Result<T, String>;

fn field<'j>(j: &'j Json, key: &str) -> R<&'j Json> {
    j.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn usize_of(j: &Json, key: &str) -> R<usize> {
    field(j, key)?
        .as_usize()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

fn u32_of(j: &Json, key: &str) -> R<u32> {
    field(j, key)?
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| format!("field `{key}` is not a u32"))
}

fn bool_of(j: &Json, key: &str) -> R<bool> {
    field(j, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

fn str_of<'j>(j: &'j Json, key: &str) -> R<&'j str> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn arr_of<'j>(j: &'j Json, key: &str) -> R<&'j [Json]> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

fn ids_of<T>(j: &Json, key: &str, f: impl Fn(u32) -> T) -> R<Vec<T>> {
    arr_of(j, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(&f)
                .ok_or_else(|| format!("field `{key}` holds a non-id value"))
        })
        .collect()
}

fn usizes_of(j: &Json, key: &str) -> R<Vec<usize>> {
    arr_of(j, key)?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| format!("field `{key}` holds a non-integer"))
        })
        .collect()
}

fn vsrc_back(j: &Json) -> R<VSrc> {
    if j.as_str() == Some("Free") {
        return Ok(VSrc::Free);
    }
    let Json::Obj(pairs) = j else {
        return Err("virtual source is neither `Free` nor a tagged object".into());
    };
    let [(tag, val)] = pairs.as_slice() else {
        return Err("virtual source object must have exactly one key".into());
    };
    let n = val
        .as_usize()
        .ok_or_else(|| format!("virtual source `{tag}` value is not an index"))?;
    match tag.as_str() {
        "Op" => Ok(VSrc::Op(n)),
        "VecIn" => Ok(VSrc::VecIn(n)),
        "ScalIn" => Ok(VSrc::ScalIn(n)),
        other => Err(format!("unknown virtual source `{other}`")),
    }
}

fn banking_back(s: &str) -> R<BankingMode> {
    Ok(match s {
        "Strided" => BankingMode::Strided,
        "Fifo" => BankingMode::Fifo,
        "LineBuffer" => BankingMode::LineBuffer,
        "Duplication" => BankingMode::Duplication,
        other => return Err(format!("unknown banking mode `{other}`")),
    })
}

fn vdesign_back(j: &Json) -> R<VirtualDesign> {
    let pcus = arr_of(j, "pcus")?
        .iter()
        .map(|u| {
            Ok(VirtualPcu {
                name: str_of(u, "name")?.to_string(),
                ctrl: CtrlId(u32_of(u, "ctrl")?),
                ops: arr_of(u, "ops")?
                    .iter()
                    .map(|op| {
                        Ok(VOp {
                            srcs: arr_of(op, "srcs")?
                                .iter()
                                .map(vsrc_back)
                                .collect::<R<_>>()?,
                            heavy: bool_of(op, "heavy")?,
                        })
                    })
                    .collect::<R<_>>()?,
                vec_ins: usize_of(u, "vec_ins")?,
                scal_ins: usize_of(u, "scal_ins")?,
                outputs: arr_of(u, "outputs")?
                    .iter()
                    .map(vsrc_back)
                    .collect::<R<_>>()?,
                vec_outs: usize_of(u, "vec_outs")?,
                scal_outs: usize_of(u, "scal_outs")?,
                reduction_lanes: usize_of(u, "reduction_lanes")?,
                lanes: usize_of(u, "lanes")?,
                copies: usize_of(u, "copies")?,
            })
        })
        .collect::<R<_>>()?;
    let pmus = arr_of(j, "pmus")?
        .iter()
        .map(|m| {
            Ok(VirtualPmu {
                sram: SramId(u32_of(m, "sram")?),
                words: usize_of(m, "words")?,
                nbuf: usize_of(m, "nbuf")?,
                banking: banking_back(str_of(m, "banking")?)?,
                write_addr_ops: usize_of(m, "write_addr_ops")?,
                read_addr_ops: usize_of(m, "read_addr_ops")?,
                copies: usize_of(m, "copies")?,
            })
        })
        .collect::<R<_>>()?;
    let ags = arr_of(j, "ags")?
        .iter()
        .map(|a| {
            Ok(VirtualAg {
                ctrl: CtrlId(u32_of(a, "ctrl")?),
                sparse: bool_of(a, "sparse")?,
                store: bool_of(a, "store")?,
                addr_ops: usize_of(a, "addr_ops")?,
                copies: usize_of(a, "copies")?,
            })
        })
        .collect::<R<_>>()?;
    Ok(VirtualDesign {
        pcus,
        pmus,
        ags,
        outers: ids_of(j, "outers", CtrlId)?,
    })
}

fn chunk_back(j: &Json) -> R<ChunkStats> {
    Ok(ChunkStats {
        stages: usize_of(j, "stages")?,
        max_live: usize_of(j, "max_live")?,
        vec_ins: usize_of(j, "vec_ins")?,
        vec_outs: usize_of(j, "vec_outs")?,
        scal_ins: usize_of(j, "scal_ins")?,
        scal_outs: usize_of(j, "scal_outs")?,
    })
}

fn placement_back(j: &Json) -> R<Placement> {
    let nested = |key: &str| -> R<Vec<Vec<SiteId>>> {
        arr_of(j, key)?
            .iter()
            .map(|v| {
                v.as_arr()
                    .ok_or_else(|| format!("`{key}` entry is not an array"))?
                    .iter()
                    .map(|n| {
                        n.as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .map(SiteId)
                            .ok_or_else(|| format!("`{key}` holds a non-id value"))
                    })
                    .collect()
            })
            .collect()
    };
    Ok(Placement {
        pcu_sites: nested("pcu_sites")?,
        pmu_sites: nested("pmu_sites")?,
        pmus_per_copy: usizes_of(j, "pmus_per_copy")?,
        ag_ids: arr_of(j, "ag_ids")?
            .iter()
            .map(|v| {
                v.as_arr()
                    .ok_or_else(|| "`ag_ids` entry is not an array".to_string())?
                    .iter()
                    .map(|n| {
                        n.as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .map(AgId)
                            .ok_or_else(|| "`ag_ids` holds a non-id value".to_string())
                    })
                    .collect()
            })
            .collect::<R<_>>()?,
        outer_switches: ids_of(j, "outer_switches", SwitchId)?,
    })
}

fn schedule_back(s: &str) -> R<Schedule> {
    Ok(match s {
        "Sequential" => Schedule::Sequential,
        "Pipelined" => Schedule::Pipelined,
        "Streaming" => Schedule::Streaming,
        other => return Err(format!("unknown schedule `{other}`")),
    })
}

fn access_back(s: &str) -> R<Access> {
    Ok(match s {
        "Write" => Access::Write,
        "Read" => Access::Read,
        other => return Err(format!("unknown access `{other}`")),
    })
}

fn accs_back(j: &Json, key: &str) -> R<Vec<(CtrlId, Access)>> {
    arr_of(j, key)?
        .iter()
        .map(|e| {
            Ok((
                CtrlId(u32_of(e, "ctrl")?),
                access_back(str_of(e, "access")?)?,
            ))
        })
        .collect()
}

fn analysis_back(j: &Json) -> R<Analysis> {
    let parent = arr_of(j, "parent")?
        .iter()
        .map(|v| match v {
            Json::Null => Ok(None),
            _ => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(|n| Some(CtrlId(n)))
                .ok_or_else(|| "`parent` holds a non-id value".to_string()),
        })
        .collect::<R<_>>()?;
    let governing = arr_of(j, "governing")?
        .iter()
        .map(|v| {
            schedule_back(
                v.as_str()
                    .ok_or_else(|| "`governing` holds a non-string".to_string())?,
            )
        })
        .collect::<R<_>>()?;
    let mut sram_access = BTreeMap::new();
    for e in arr_of(j, "sram_access")? {
        sram_access.insert(SramId(u32_of(e, "sram")?), accs_back(e, "accs")?);
    }
    let mut reg_access = BTreeMap::new();
    for e in arr_of(j, "reg_access")? {
        reg_access.insert(RegId(u32_of(e, "reg")?), accs_back(e, "accs")?);
    }
    let mut nbuf = BTreeMap::new();
    for e in arr_of(j, "nbuf")? {
        nbuf.insert(SramId(u32_of(e, "sram")?), usize_of(e, "depth")?);
    }
    Ok(Analysis {
        parent,
        governing,
        child_index: usizes_of(j, "child_index")?,
        copies: usizes_of(j, "copies")?,
        lanes: usizes_of(j, "lanes")?,
        anc_copies: usizes_of(j, "anc_copies")?,
        sram_access,
        reg_access,
        nbuf,
        depth: usizes_of(j, "depth")?,
    })
}

fn decode_json(j: &Json) -> R<Bitstream> {
    let version = u32_of(j, "version")?;
    if version != Bitstream::VERSION {
        return Err(format!(
            "unsupported artifact version {version} (this build reads version {})",
            Bitstream::VERSION
        ));
    }
    let hash_str = str_of(j, "content_hash")?;
    let content_hash = u64::from_str_radix(hash_str, 16)
        .map_err(|_| format!("`content_hash` is not a hex hash: `{hash_str}`"))?;
    let phash_str = str_of(j, "program_hash")?;
    let program_hash = u64::from_str_radix(phash_str, 16)
        .map_err(|_| format!("`program_hash` is not a hex hash: `{phash_str}`"))?;
    let degradations = arr_of(j, "degradations")?
        .iter()
        .map(|d| {
            d.as_str()
                .map(str::to_string)
                .ok_or_else(|| "`degradations` holds a non-string".to_string())
        })
        .collect::<R<_>>()?;
    let config = MachineConfig::from_json(field(j, "config")?).map_err(|e| e.to_string())?;
    let output = CompileOutput {
        config,
        virtual_design: vdesign_back(field(j, "virtual_design")?)?,
        chunks: arr_of(j, "chunks")?
            .iter()
            .map(|cs| {
                cs.as_arr()
                    .ok_or_else(|| "`chunks` entry is not an array".to_string())?
                    .iter()
                    .map(chunk_back)
                    .collect()
            })
            .collect::<R<_>>()?,
        placement: placement_back(field(j, "placement")?)?,
        analysis: analysis_back(field(j, "analysis")?)?,
        timings: Default::default(),
    };
    Ok(Bitstream {
        version,
        program_name: str_of(j, "program_name")?.to_string(),
        program_hash,
        content_hash,
        degradations,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::compile;
    use plasticine_arch::PlasticineParams;

    #[test]
    fn artifact_roundtrips_and_hash_is_stable() {
        let p = crate::emit::tests::vadd_tiled(2);
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let b = Bitstream::new(&p, out, vec![]);
        let encoded = b.encode();
        let back = Bitstream::decode(&encoded).unwrap();
        assert_eq!(back.version, Bitstream::VERSION);
        assert_eq!(back.program_name, "vadd");
        assert_eq!(back.content_hash, b.content_hash);
        assert!(back.matches_program(&p));
        assert!(!back.matches_program(&crate::emit::tests::vadd_tiled(4)));
        // Re-encoding the decoded artifact is byte-identical.
        assert_eq!(back.encode(), encoded);
    }

    #[test]
    fn tampering_is_detected() {
        let p = crate::emit::tests::vadd_tiled(1);
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let b = Bitstream::new(&p, out, vec![]);
        let tampered = b.encode().replace("\"vadd\"", "\"vado\"");
        let err = Bitstream::decode(&tampered).unwrap_err();
        assert!(err.to_string().contains("hash"), "{err}");
    }

    #[test]
    fn degradation_log_replays() {
        let p = crate::emit::tests::vadd_tiled(4);
        let (reduced, desc) = p.with_reduced_par().unwrap();
        let out = compile(&reduced, &PlasticineParams::paper_final()).unwrap();
        let b = Bitstream::new(&p, out, vec![format!("{desc} (insufficient fabric)")]);
        let recovered = b.recover_program(&p).unwrap();
        assert_eq!(recovered, reduced);
        // A log that does not match the program is rejected.
        let wrong = Bitstream::new(
            &p,
            b.output.clone(),
            vec!["bogus: par 64 -> 32 (nope)".to_string()],
        );
        assert!(wrong.recover_program(&p).is_err());
    }
}
