//! Greedy placement of logical units onto physical sites.
//!
//! Units are placed in program order; each allocation picks the free sites
//! of the right kind closest to the centroid of already-placed
//! communication partners, which keeps producer→consumer paths short for
//! the router. This approximates the paper's hierarchical binding (§3.6):
//! "datapath and control path placement and routing" over fewer than 1000
//! nodes per level, where greedy heuristics suffice.
//!
//! Placement is fault-aware: sites listed in the [`FaultMap`] are excluded
//! from the free pools, and PMUs with disabled banks contribute only their
//! surviving capacity, so a degraded chip simply looks like a smaller one.
//! When the survivors genuinely cannot host the design, placement returns
//! [`CompileError::InsufficientFabric`] instead of the fault-free
//! [`CompileError::OutOfResources`].

use crate::analysis::Analysis;
use crate::error::CompileError;
use crate::partition::ChunkStats;
use crate::vunit::VirtualDesign;
use plasticine_arch::{AgId, FaultMap, Partition, PlasticineParams, SiteId, SiteKind, Topology};
use plasticine_ppir::{BankingMode, CtrlId, Program, SramId};
use std::collections::HashMap;

/// Physical sites assigned to every logical unit.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per virtual PCU: `copies × chunks` physical PCU sites, copy-major
    /// (copy 0's chain first).
    pub pcu_sites: Vec<Vec<SiteId>>,
    /// Per virtual PMU: physical PMU sites, copy-major. On a pristine chip
    /// every copy takes `pmus_per_copy` sites; on a chip with disabled
    /// banks a copy may need extra sites to reach its capacity.
    pub pmu_sites: Vec<Vec<SiteId>>,
    /// Physical PMUs one copy of each virtual PMU occupies on a pristine
    /// chip (nominal; bank faults can raise the realized count).
    pub pmus_per_copy: Vec<usize>,
    /// Per virtual AG: one physical AG per copy.
    pub ag_ids: Vec<Vec<AgId>>,
    /// Per outer controller (in `VirtualDesign::outers` order): hosting
    /// switch.
    pub outer_switches: Vec<plasticine_arch::SwitchId>,
}

/// Physical PMUs required by one copy of a virtual PMU.
///
/// Duplication banking replicates the contents across the banks of the PMU,
/// so a duplicated memory's capacity is a single bank.
pub fn pmus_per_copy(
    words: usize,
    nbuf: usize,
    banking: BankingMode,
    params: &PlasticineParams,
) -> usize {
    let cap = match banking {
        BankingMode::Duplication => params.pmu.bank_kb * 1024 / 4,
        _ => params.pmu.capacity_words(),
    };
    (words * nbuf).div_ceil(cap).max(1)
}

struct FreeSites {
    free: Vec<SiteId>,
}

impl FreeSites {
    fn new(topo: &Topology, kind: SiteKind, faults: &FaultMap) -> FreeSites {
        let dead = match kind {
            SiteKind::Pcu => &faults.dead_pcus,
            SiteKind::Pmu => &faults.dead_pmus,
        };
        FreeSites {
            free: topo
                .sites_of(kind)
                .into_iter()
                .filter(|s| !dead.contains(s))
                .collect(),
        }
    }

    fn sort_near(&mut self, topo: &Topology, cx: f64, cy: f64) {
        self.free.sort_by(|a, b| {
            let sa = topo.site(*a);
            let sb = topo.site(*b);
            let da = (sa.x as f64 - cx).abs() + (sa.y as f64 - cy).abs();
            let db = (sb.x as f64 - cx).abs() + (sb.y as f64 - cy).abs();
            da.total_cmp(&db).then(a.cmp(b))
        });
    }

    /// Takes the `n` free sites nearest `(cx, cy)`.
    fn take_near(&mut self, topo: &Topology, n: usize, cx: f64, cy: f64) -> Option<Vec<SiteId>> {
        if self.free.len() < n {
            return None;
        }
        self.sort_near(topo, cx, cy);
        Some(self.free.drain(..n).collect())
    }

    /// Takes the fewest nearest sites whose summed capacity (per `cap_of`)
    /// covers `need_words`; always at least one site. Returns `None` when
    /// the whole pool cannot cover the need.
    fn take_words(
        &mut self,
        topo: &Topology,
        need_words: usize,
        cx: f64,
        cy: f64,
        cap_of: impl Fn(SiteId) -> usize,
    ) -> Option<Vec<SiteId>> {
        self.sort_near(topo, cx, cy);
        let mut acc = 0usize;
        let mut n = 0usize;
        for &s in &self.free {
            acc += cap_of(s);
            n += 1;
            if acc >= need_words && n >= 1 {
                return Some(self.free.drain(..n).collect());
            }
        }
        None
    }
}

fn centroid(topo: &Topology, sites: &[SiteId]) -> Option<(f64, f64)> {
    if sites.is_empty() {
        return None;
    }
    let (mut x, mut y) = (0.0, 0.0);
    for &s in sites {
        let st = topo.site(s);
        x += st.x as f64;
        y += st.y as f64;
    }
    Some((x / sites.len() as f64, y / sites.len() as f64))
}

/// `InsufficientFabric` when the fault map removed capacity of this kind,
/// plain `OutOfResources` otherwise (the program is simply too big).
fn fabric_err(kind: &'static str, need: usize, have: usize, faulted: usize) -> CompileError {
    if faulted > 0 {
        CompileError::InsufficientFabric {
            kind,
            need,
            have,
            faulted,
        }
    } else {
        CompileError::OutOfResources { kind, need, have }
    }
}

/// Runs placement.
///
/// # Errors
///
/// Returns [`CompileError::OutOfResources`] if the design needs more PCUs,
/// PMUs, or AGs than the chip provides, or
/// [`CompileError::InsufficientFabric`] when it would have fit but fault-map
/// degradation removed the capacity.
#[allow(clippy::too_many_arguments)]
pub fn place(
    p: &Program,
    an: &Analysis,
    v: &VirtualDesign,
    chunks: &[Vec<ChunkStats>],
    params: &PlasticineParams,
    topo: &Topology,
    faults: &FaultMap,
    band: Option<&Partition>,
) -> Result<Placement, CompileError> {
    let mut pcus = FreeSites::new(topo, SiteKind::Pcu, faults);
    let mut pmus = FreeSites::new(topo, SiteKind::Pmu, faults);
    // Inside a partition only the band's edge AGs are ours; their raw-id
    // order is translation-equivariant, so allocation decisions relocate
    // with the band.
    let mut free_ags: Vec<AgId> = match band {
        Some(b) => b.ag_pool(topo),
        None => (0..params.ags as u32).map(AgId).collect(),
    };

    let bank_words = params.pmu.bank_kb * 1024 / 4;
    let live_banks = |s: SiteId| -> usize {
        params
            .pmu
            .banks
            .saturating_sub(faults.dead_banks.get(&s).copied().unwrap_or(0))
    };
    // Surviving scratchpad words a site offers under a banking mode.
    let site_cap = |s: SiteId, banking: BankingMode| -> usize {
        match banking {
            BankingMode::Duplication => {
                if live_banks(s) >= 1 {
                    bank_words
                } else {
                    0
                }
            }
            _ => live_banks(s) * bank_words,
        }
    };
    let pmu_faulted = faults.dead_pmus.len() + faults.dead_banks.values().sum::<usize>();

    // Totals check up front for a clear error message.
    let need_pcus: usize = v
        .pcus
        .iter()
        .zip(chunks)
        .map(|(u, c)| u.copies * c.len())
        .sum();
    if need_pcus > pcus.free.len() {
        return Err(fabric_err(
            "PCU",
            need_pcus,
            pcus.free.len(),
            faults.dead_pcus.len(),
        ));
    }
    let per_copy: Vec<usize> = v
        .pmus
        .iter()
        .map(|m| pmus_per_copy(m.words, m.nbuf, m.banking, params))
        .collect();
    let need_pmus: usize = v
        .pmus
        .iter()
        .zip(&per_copy)
        .map(|(m, pc)| m.copies * pc)
        .sum();
    if need_pmus > pmus.free.len() {
        return Err(fabric_err("PMU", need_pmus, pmus.free.len(), pmu_faulted));
    }
    let need_ags: usize = v.ags.iter().map(|a| a.copies).sum();
    if need_ags > free_ags.len() {
        // AGs outside the band count as removed fabric so that degraded
        // compilation reduces parallelization instead of giving up.
        let ag_restricted = params.ags - free_ags.len();
        return Err(fabric_err("AG", need_ags, free_ags.len(), ag_restricted));
    }

    let mut pcu_sites: Vec<Vec<SiteId>> = vec![Vec::new(); v.pcus.len()];
    let mut pmu_sites: Vec<Vec<SiteId>> = vec![Vec::new(); v.pmus.len()];
    let mut ag_ids: Vec<Vec<AgId>> = vec![Vec::new(); v.ags.len()];

    // Index maps for partner lookup.
    let pcu_of_ctrl: HashMap<CtrlId, usize> = v
        .pcus
        .iter()
        .enumerate()
        .map(|(i, u)| (u.ctrl, i))
        .collect();
    let pmu_of_sram: HashMap<SramId, usize> = v
        .pmus
        .iter()
        .enumerate()
        .map(|(i, m)| (m.sram, i))
        .collect();

    // Placement order: walk inner controllers in program order; place each
    // compute unit, then any scratchpads it touches that are unplaced.
    let center = match band {
        Some(b) => b.center(params),
        None => (
            (params.cols as f64 - 1.0) / 2.0,
            (params.rows as f64 - 1.0) / 2.0,
        ),
    };
    let mut order: Vec<(Option<usize>, Vec<usize>)> = Vec::new(); // (pcu idx, sram idxs)
    {
        let mut sram_done = vec![false; v.pmus.len()];
        for cid in p.inner_ctrls() {
            let pcu = pcu_of_ctrl.get(&cid).copied();
            let mut touched: Vec<usize> = Vec::new();
            for (s, accs) in &an.sram_access {
                if accs.iter().any(|(c, _)| *c == cid) {
                    let mi = pmu_of_sram[s];
                    if !sram_done[mi] {
                        sram_done[mi] = true;
                        touched.push(mi);
                    }
                }
            }
            touched.sort_unstable();
            order.push((pcu, touched));
        }
        // Any scratchpad never touched (dead) still gets placed at the end.
        for (mi, done) in sram_done.iter().enumerate() {
            if !done {
                order.push((None, vec![mi]));
            }
        }
    }

    for (pcu_idx, sram_idxs) in order {
        if let Some(ui) = pcu_idx {
            let u = &v.pcus[ui];
            let n = u.copies * chunks[ui].len();
            // Partners: scratchpads it reads/writes that are already placed.
            let mut partner_sites: Vec<SiteId> = Vec::new();
            for (s, accs) in &an.sram_access {
                if accs.iter().any(|(c, _)| *c == u.ctrl) {
                    partner_sites.extend(pmu_sites[pmu_of_sram[s]].iter().copied());
                }
            }
            let (cx, cy) = centroid(topo, &partner_sites).unwrap_or(center);
            pcu_sites[ui] = pcus
                .take_near(topo, n, cx, cy)
                .ok_or_else(|| fabric_err("PCU", n, pcus.free.len(), faults.dead_pcus.len()))?;
        }
        for mi in sram_idxs {
            let m = &v.pmus[mi];
            let need_words = (m.words * m.nbuf).max(1);
            let mut partner_sites: Vec<SiteId> = Vec::new();
            for (c, _) in an.sram_access.get(&m.sram).into_iter().flatten() {
                if let Some(&ui) = pcu_of_ctrl.get(c) {
                    partner_sites.extend(pcu_sites[ui].iter().copied());
                }
            }
            let (cx, cy) = centroid(topo, &partner_sites).unwrap_or(center);
            // Each copy takes the nearest sites whose surviving capacity
            // covers the memory. On a pristine chip this is exactly
            // `per_copy[mi]` full-capacity sites.
            for _ in 0..m.copies {
                let taken = pmus
                    .take_words(topo, need_words, cx, cy, |s| site_cap(s, m.banking))
                    .ok_or_else(|| {
                        fabric_err("PMU", m.copies * per_copy[mi], pmus.free.len(), pmu_faulted)
                    })?;
                pmu_sites[mi].extend(taken);
            }
        }
    }

    // AGs: allocate nearest to the scratchpads they fill/drain. Free AGs are
    // consumed nearest-first.
    for (ai, a) in v.ags.iter().enumerate() {
        let mut partner_sites: Vec<SiteId> = Vec::new();
        for (s, accs) in &an.sram_access {
            if accs.iter().any(|(c, _)| *c == a.ctrl) {
                partner_sites.extend(pmu_sites[pmu_of_sram[s]].iter().copied());
            }
        }
        let (cx, cy) = centroid(topo, &partner_sites).unwrap_or(center);
        free_ags.sort_by(|x, y| {
            let dx = topo.switch_xy(topo.ag_switch(*x));
            let dy = topo.switch_xy(topo.ag_switch(*y));
            let da = (dx.0 as f64 - cx).abs() + (dx.1 as f64 - cy).abs();
            let db = (dy.0 as f64 - cx).abs() + (dy.1 as f64 - cy).abs();
            da.total_cmp(&db).then(x.cmp(y))
        });
        ag_ids[ai] = free_ags.drain(..a.copies).collect();
    }

    // Outer controllers: host each in the switch nearest its children's
    // centroid.
    let mut outer_switches = Vec::with_capacity(v.outers.len());
    for &oc in &v.outers {
        let mut child_sites: Vec<SiteId> = Vec::new();
        if let plasticine_ppir::CtrlBody::Outer { children, .. } = &p.ctrl(oc).body {
            for ch in children {
                if let Some(&ui) = pcu_of_ctrl.get(ch) {
                    child_sites.extend(pcu_sites[ui].iter().copied());
                }
            }
        }
        let (cx, cy) = centroid(topo, &child_sites).unwrap_or(center);
        let sx = (cx.round() as usize).min(topo.switch_cols() - 1);
        let mut sy = (cy.round() as usize).min(topo.switch_rows() - 1);
        if let Some(b) = band {
            // Keep the host switch inside the band's switch rectangle so
            // the placement translates with the band.
            sy = sy.clamp(b.y0, b.y0 + b.rows);
        }
        outer_switches.push(topo.switch_at(sx, sy));
    }

    Ok(Placement {
        pcu_sites,
        pmu_sites,
        pmus_per_copy: per_copy,
        ag_ids,
        outer_switches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmus_per_copy_respects_capacity_and_duplication() {
        let p = PlasticineParams::paper_final();
        // 64K words = 256KB: exactly one PMU.
        assert_eq!(pmus_per_copy(65536, 1, BankingMode::Strided, &p), 1);
        // Double buffering doubles the requirement.
        assert_eq!(pmus_per_copy(65536, 2, BankingMode::Strided, &p), 2);
        // Duplication shrinks capacity to one bank (4K words).
        assert_eq!(pmus_per_copy(4096, 1, BankingMode::Duplication, &p), 1);
        assert_eq!(pmus_per_copy(4097, 1, BankingMode::Duplication, &p), 2);
        // Tiny memories still take one PMU.
        assert_eq!(pmus_per_copy(1, 1, BankingMode::Strided, &p), 1);
    }

    #[test]
    fn dead_sites_are_excluded_from_free_pools() {
        let params = PlasticineParams::paper_final();
        let topo = plasticine_arch::Topology::new(&params);
        let mut faults = FaultMap::default();
        let pcu0 = topo.sites_of(SiteKind::Pcu)[0];
        faults.dead_pcus.insert(pcu0);
        let free = FreeSites::new(&topo, SiteKind::Pcu, &faults);
        assert_eq!(free.free.len(), 63);
        assert!(!free.free.contains(&pcu0));
    }

    #[test]
    fn take_words_spans_extra_sites_when_banks_die() {
        let params = PlasticineParams::paper_final();
        let topo = plasticine_arch::Topology::new(&params);
        let full_cap = params.pmu.capacity_words();
        // Fault-free: one full-capacity memory takes one site.
        let mut free = FreeSites::new(&topo, SiteKind::Pmu, &FaultMap::default());
        let taken = free
            .take_words(&topo, full_cap, 0.0, 0.0, |_| full_cap)
            .unwrap();
        assert_eq!(taken.len(), 1);
        // Half the banks dead everywhere: the same memory needs two sites.
        let mut free = FreeSites::new(&topo, SiteKind::Pmu, &FaultMap::default());
        let taken = free
            .take_words(&topo, full_cap, 0.0, 0.0, |_| full_cap / 2)
            .unwrap();
        assert_eq!(taken.len(), 2);
        // Nothing survives: allocation fails.
        let mut free = FreeSites::new(&topo, SiteKind::Pmu, &FaultMap::default());
        assert!(free.take_words(&topo, full_cap, 0.0, 0.0, |_| 0).is_none());
    }
}
