//! The `route` and `emit` passes: units, links, DRAM allocation →
//! [`MachineConfig`]. Driven by the pass manager in [`crate::passes`].

use crate::analysis::{Access, Analysis};
use crate::error::CompileError;
use crate::partition::ChunkStats;
use crate::place::Placement;
use crate::route::{path_hops, Router};
use crate::vunit::VirtualDesign;
use plasticine_arch::{
    AgCfg, AgMode, ComputeCfg, DramAlloc, LinkCfg, MachineConfig, MemoryCfg, NetClass,
    OuterCtrlCfg, ResourceUsage, SwitchId, Topology, UnitCfg, UnitId,
};
use plasticine_ppir::{CBound, CtrlBody, CtrlId, Program, SramId};
use std::collections::HashMap;

/// The `route` pass: builds the physical unit list from the placed design
/// and routes every logical connection over the switch mesh.
///
/// Iteration over the analysis access maps is deterministic (they are
/// ordered `BTreeMap`s), so two compiles of the same input emit links in
/// the same order and claim identical tracks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route(
    p: &Program,
    an: &Analysis,
    v: &VirtualDesign,
    chunks: &[Vec<ChunkStats>],
    placement: &Placement,
    topo: &Topology,
    limits: crate::route::RouteLimits,
    faults: &plasticine_arch::FaultMap,
) -> Result<(Vec<UnitCfg>, Vec<LinkCfg>), CompileError> {
    // ---- Units ----
    let np = v.pcus.len();
    let nm = v.pmus.len();
    let na = v.ags.len();
    let mut units: Vec<UnitCfg> = Vec::with_capacity(np + nm + na + v.outers.len());
    for (i, u) in v.pcus.iter().enumerate() {
        units.push(UnitCfg::Compute(ComputeCfg {
            ctrl: u.ctrl,
            sites: placement.pcu_sites[i].clone(),
            copies: u.copies,
            pcus_per_copy: chunks[i].len(),
            pipeline_depth: chunks[i].iter().map(|c| c.stages).sum(),
            lanes: u.lanes,
        }));
    }
    for (j, m) in v.pmus.iter().enumerate() {
        units.push(UnitCfg::Memory(MemoryCfg {
            sram: m.sram,
            sites: placement.pmu_sites[j].clone(),
            nbuf: m.nbuf,
            banking: m.banking,
        }));
    }
    for (k, a) in v.ags.iter().enumerate() {
        units.push(UnitCfg::Ag(AgCfg {
            ctrl: a.ctrl,
            ags: placement.ag_ids[k].clone(),
            mode: if a.sparse {
                AgMode::Sparse
            } else {
                AgMode::Dense
            },
        }));
    }
    for (l, &oc) in v.outers.iter().enumerate() {
        units.push(UnitCfg::Outer(OuterCtrlCfg {
            ctrl: oc,
            switch: placement.outer_switches[l],
        }));
    }

    // Lookup: ctrl → unit, sram → unit.
    let mut unit_of_ctrl: HashMap<CtrlId, UnitId> = HashMap::new();
    let mut unit_of_sram: HashMap<SramId, UnitId> = HashMap::new();
    for (i, u) in units.iter().enumerate() {
        match u {
            UnitCfg::Memory(m) => {
                unit_of_sram.insert(m.sram, UnitId(i as u32));
            }
            _ => {
                if let Some(c) = u.ctrl() {
                    unit_of_ctrl.insert(c, UnitId(i as u32));
                }
            }
        }
    }

    // Anchor switches per unit copy.
    let anchor = |uid: UnitId, copy: usize, last: bool| -> SwitchId {
        match &units[uid.0 as usize] {
            UnitCfg::Compute(c) => {
                let per = c.pcus_per_copy.max(1);
                let base = (copy % c.copies.max(1)) * per;
                let idx = if last { base + per - 1 } else { base };
                topo.site_switch(c.sites[idx.min(c.sites.len() - 1)])
            }
            UnitCfg::Memory(m) => topo.site_switch(m.sites[copy % m.sites.len()]),
            UnitCfg::Ag(a) => topo.ag_switch(a.ags[copy % a.ags.len()]),
            UnitCfg::Outer(o) => o.switch,
        }
    };

    // ---- Links ----
    let mut router = Router::degraded(topo, limits, faults);
    let mut links: Vec<LinkCfg> = Vec::new();
    let add_link = |router: &mut Router,
                    links: &mut Vec<LinkCfg>,
                    src: UnitId,
                    sa: SwitchId,
                    dst: UnitId,
                    da: SwitchId,
                    class: NetClass|
     -> Result<(), CompileError> {
        let path = router.route(sa, da, class)?;
        let hops = path_hops(&path);
        links.push(LinkCfg {
            src,
            dst,
            class,
            path,
            hops,
        });
        Ok(())
    };

    // 1. Intra-unit chunk chains (vector).
    for (i, u) in v.pcus.iter().enumerate() {
        let per = chunks[i].len();
        if per < 2 {
            continue;
        }
        let uid = UnitId(i as u32);
        for copy in 0..u.copies {
            for j in 0..per - 1 {
                let s = topo.site_switch(placement.pcu_sites[i][copy * per + j]);
                let d = topo.site_switch(placement.pcu_sites[i][copy * per + j + 1]);
                add_link(&mut router, &mut links, uid, s, uid, d, NetClass::Vector)?;
            }
        }
    }

    // 2/3. Scratchpad traffic between memories and compute/AG units.
    for (sram, accs) in &an.sram_access {
        let Some(&mem_uid) = unit_of_sram.get(sram) else {
            continue;
        };
        for (ctrl, acc) in accs {
            let Some(&cu_uid) = unit_of_ctrl.get(ctrl) else {
                continue;
            };
            let copies = an.copies[ctrl.0 as usize].max(1);
            for copy in 0..copies {
                match acc {
                    Access::Read => {
                        let s = anchor(mem_uid, copy, false);
                        let d = anchor(cu_uid, copy, false);
                        add_link(
                            &mut router,
                            &mut links,
                            mem_uid,
                            s,
                            cu_uid,
                            d,
                            NetClass::Vector,
                        )?;
                    }
                    Access::Write => {
                        let s = anchor(cu_uid, copy, true);
                        let d = anchor(mem_uid, copy, false);
                        add_link(
                            &mut router,
                            &mut links,
                            cu_uid,
                            s,
                            mem_uid,
                            d,
                            NetClass::Vector,
                        )?;
                    }
                }
            }
        }
    }

    // 4. Register traffic (scalar network).
    for (_reg, accs) in &an.reg_access {
        let writers: Vec<CtrlId> = accs
            .iter()
            .filter(|(_, a)| *a == Access::Write)
            .map(|(c, _)| *c)
            .collect();
        let readers: Vec<CtrlId> = accs
            .iter()
            .filter(|(_, a)| *a == Access::Read)
            .map(|(c, _)| *c)
            .collect();
        for w in &writers {
            for r in &readers {
                if w == r {
                    continue;
                }
                let (Some(&wu), Some(&ru)) = (unit_of_ctrl.get(w), unit_of_ctrl.get(r)) else {
                    continue;
                };
                let s = anchor(wu, 0, true);
                let d = anchor(ru, 0, false);
                add_link(&mut router, &mut links, wu, s, ru, d, NetClass::Scalar)?;
            }
        }
        // Counter bounds reading this register also need the broadcast.
        for (ci, ctrl) in p.ctrls().iter().enumerate() {
            let reads = ctrl.cchain.iter().any(|k| {
                matches!(k.min, CBound::Reg(r) if r == *_reg)
                    || matches!(k.max, CBound::Reg(r) if r == *_reg)
            });
            if !reads {
                continue;
            }
            let cid = CtrlId(ci as u32);
            for w in &writers {
                if *w == cid {
                    continue;
                }
                let (Some(&wu), Some(&ru)) = (unit_of_ctrl.get(w), unit_of_ctrl.get(&cid)) else {
                    continue;
                };
                let s = anchor(wu, 0, true);
                let d = anchor(ru, 0, false);
                add_link(&mut router, &mut links, wu, s, ru, d, NetClass::Scalar)?;
            }
        }
    }

    // 5. Control: parent ↔ children (token out, done/credit back).
    for &oc in &v.outers {
        let Some(&pu) = unit_of_ctrl.get(&oc) else {
            continue;
        };
        if let CtrlBody::Outer { children, .. } = &p.ctrl(oc).body {
            for ch in children {
                // Memory-only children do not exist; every child controller
                // has a unit (compute, AG, or outer).
                let Some(&cu) = unit_of_ctrl.get(ch) else {
                    continue;
                };
                let ps = anchor(pu, 0, false);
                let cs = anchor(cu, 0, false);
                add_link(&mut router, &mut links, pu, ps, cu, cs, NetClass::Control)?;
                add_link(&mut router, &mut links, cu, cs, pu, ps, NetClass::Control)?;
            }
        }
    }

    Ok((units, links))
}

/// The `emit` pass: DRAM allocation, resource usage, and the final
/// [`MachineConfig`].
pub(crate) fn assemble(
    p: &Program,
    params: &plasticine_arch::PlasticineParams,
    v: &VirtualDesign,
    placement: &Placement,
    units: Vec<UnitCfg>,
    links: Vec<LinkCfg>,
    partition: Option<plasticine_arch::Partition>,
) -> MachineConfig {
    // DRAM allocation: 4 KiB-aligned, sequential.
    let mut base = Vec::with_capacity(p.drams().len());
    let mut cursor: u64 = 0;
    for d in p.drams() {
        base.push(cursor);
        let bytes = (d.len as u64) * 4;
        cursor += bytes.div_ceil(4096) * 4096;
    }

    let usage = ResourceUsage {
        pcus: placement.pcu_sites.iter().map(|s| s.len()).sum(),
        pmus: placement.pmu_sites.iter().map(|s| s.len()).sum(),
        ags: placement.ag_ids.iter().map(|s| s.len()).sum(),
        switch_ctrls: v.outers.len(),
    };

    MachineConfig {
        params: params.clone(),
        program_name: p.name().to_string(),
        units,
        links,
        alloc: DramAlloc { base },
        usage,
        partition,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use crate::error::CompileError;
    use crate::passes::compile;
    use plasticine_arch::{PlasticineParams, UnitCfg};
    use plasticine_ppir::*;

    /// Tiled vector-add: load two tiles, add, store, over 4 tiles.
    pub(crate) fn vadd_tiled(par_tiles: usize) -> Program {
        let n = 256usize;
        let tile = 64usize;
        let mut b = ProgramBuilder::new("vadd");
        let da = b.dram("a", DType::F32, n);
        let db = b.dram("b", DType::F32, n);
        let dc = b.dram("c", DType::F32, n);
        let sa = b.sram("ta", DType::F32, &[tile]);
        let sb = b.sram("tb", DType::F32, &[tile]);
        let sc = b.sram("tc", DType::F32, &[tile]);
        let t = b.counter(0, (n / tile) as i64, 1, par_tiles);
        let tidx = t.index;
        let mut basef = Func::new("base");
        let ti = basef.index(tidx);
        let tl = basef.konst(Elem::I32(tile as i32));
        let off = basef.binary(BinOp::Mul, ti, tl);
        basef.set_outputs(vec![off]);
        let basef = b.func(basef);
        let lda = b.inner(
            "ld_a",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: da,
                dram_base: basef,
                rows: 1,
                cols: tile,
                dram_row_stride: tile,
                sram: sa,
            }),
        );
        let ldb = b.inner(
            "ld_b",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: db,
                dram_base: basef,
                rows: 1,
                cols: tile,
                dram_row_stride: tile,
                sram: sb,
            }),
        );
        let i = b.counter(0, tile as i64, 1, 16);
        let mut body = Func::new("add");
        let iv = body.index(i.index);
        let av = body.load(sa, vec![iv]);
        let bv = body.load(sb, vec![iv]);
        let s = body.binary(BinOp::Add, av, bv);
        body.set_outputs(vec![s]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let add = b.inner(
            "add",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: sc,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let st = b.inner(
            "st_c",
            vec![],
            InnerOp::StoreTile(TileTransfer {
                dram: dc,
                dram_base: basef,
                rows: 1,
                cols: tile,
                dram_row_stride: tile,
                sram: sc,
            }),
        );
        let root = b.outer(
            "tiles",
            Schedule::Pipelined,
            vec![t],
            vec![lda, ldb, add, st],
        );
        b.finish(root).unwrap()
    }

    #[test]
    fn vadd_compiles_on_paper_params() {
        let p = vadd_tiled(1);
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let cfg = &out.config;
        // 1 compute unit, 3 memories, 3 AGs, 1 outer controller.
        assert_eq!(out.virtual_design.pcus.len(), 1);
        assert_eq!(out.virtual_design.pmus.len(), 3);
        assert_eq!(out.virtual_design.ags.len(), 3);
        assert_eq!(cfg.usage.pcus, 1);
        assert_eq!(cfg.usage.pmus, 3);
        assert_eq!(cfg.usage.ags, 3);
        // Double buffering inferred on all three tiles.
        for u in &cfg.units {
            if let UnitCfg::Memory(m) = u {
                assert_eq!(m.nbuf, 2, "sram {:?}", m.sram);
            }
        }
        // Links exist and have latency.
        assert!(!cfg.links.is_empty());
        assert!(cfg.links.iter().all(|l| l.hops >= 2));
        // DRAM buffers are 4K-aligned and disjoint.
        let bases = &cfg.alloc.base;
        assert_eq!(bases.len(), 3);
        assert!(bases.iter().all(|b| b % 4096 == 0));
        // n=256 floats = 1024 B → rounded up to one 4096 B page.
        assert_eq!(bases[1] - bases[0], 4096);
        assert_eq!(bases[2], 8192);
    }

    #[test]
    fn unrolling_multiplies_resources() {
        let p1 = vadd_tiled(1);
        let p2 = vadd_tiled(2);
        let params = PlasticineParams::paper_final();
        let o1 = compile(&p1, &params).unwrap();
        let o2 = compile(&p2, &params).unwrap();
        assert_eq!(o2.config.usage.pcus, 2 * o1.config.usage.pcus);
        assert_eq!(o2.config.usage.ags, 2 * o1.config.usage.ags);
        assert_eq!(o2.config.usage.pmus, 2 * o1.config.usage.pmus);
    }

    #[test]
    fn lane_clamping_creates_copies() {
        let p = vadd_tiled(1);
        let mut params = PlasticineParams::paper_final();
        params.pcu.lanes = 4; // program asks for 16
        let out = compile(&p, &params).unwrap();
        let u = &out.virtual_design.pcus[0];
        assert_eq!(u.lanes, 4);
        assert_eq!(u.copies, 4);
        assert_eq!(out.config.usage.pcus, 4);
    }

    #[test]
    fn oversubscription_is_reported() {
        let p = vadd_tiled(80); // 80 copies of everything
        let err = compile(&p, &PlasticineParams::paper_final()).unwrap_err();
        assert!(matches!(err, CompileError::OutOfResources { .. }), "{err}");
    }

    #[test]
    fn utilization_is_consistent() {
        let p = vadd_tiled(4);
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        let (pcu_u, pmu_u, ag_u) = out.config.utilization();
        assert!(pcu_u > 0.0 && pcu_u <= 1.0);
        assert!(pmu_u > 0.0 && pmu_u <= 1.0);
        assert!(ag_u > 0.0 && ag_u <= 1.0);
    }
}
