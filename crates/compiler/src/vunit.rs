//! Virtual units: the abstracted unit representation of §3.6.
//!
//! Each inner controller becomes a [`VirtualPcu`] — a dataflow graph of ALU
//! operations with unbounded stages, registers, and IO — and each
//! scratchpad a [`VirtualPmu`]. Virtual units are later *partitioned* into
//! physical units obeying the architecture parameters; the same procedure
//! drives the design-space exploration of Figure 7 (the number of physical
//! PCUs a parameter choice implies is exactly the partitioner's output).
//!
//! Address computation is split the way the hardware splits it (§3.2):
//! expression nodes feeding only scratchpad-load addresses run on the PMU's
//! address datapath and are *excluded* from the PCU graph; the load itself
//! becomes a vector input to the PCU.

use crate::analysis::Analysis;
use plasticine_ppir::{
    BankingMode, CtrlBody, CtrlId, Expr, Func, InnerOp, Program, SramId, UnaryOp,
};
use std::collections::HashSet;

/// Source of one operand of a virtual ALU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VSrc {
    /// Result of an earlier op in the same virtual unit (a pipeline-register
    /// value).
    Op(usize),
    /// A vector input stream (data arriving from a PMU or another PCU).
    VecIn(usize),
    /// A scalar input (runtime parameter or register broadcast).
    ScalIn(usize),
    /// Free source: constant or counter value (generated inside the PCU).
    Free,
}

/// One ALU operation of a virtual PCU.
#[derive(Debug, Clone, PartialEq)]
pub struct VOp {
    /// Operand sources.
    pub srcs: Vec<VSrc>,
    /// Whether this is an iterative (transcendental) op — same pipeline
    /// slot, higher energy.
    pub heavy: bool,
}

/// A virtual Pattern Compute Unit: one inner controller's dataflow.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualPcu {
    /// Diagnostic name (the controller's).
    pub name: String,
    /// The controller implemented.
    pub ctrl: CtrlId,
    /// ALU ops in topological order.
    pub ops: Vec<VOp>,
    /// Distinct vector input streams (one per scratchpad-load site).
    pub vec_ins: usize,
    /// Distinct scalar inputs (params + register reads).
    pub scal_ins: usize,
    /// Values leaving on vector buses (pattern outputs written to PMUs).
    pub outputs: Vec<VSrc>,
    /// Vector output buses required.
    pub vec_outs: usize,
    /// Scalar output buses required (fold results, filter counts).
    pub scal_outs: usize,
    /// Lanes of cross-lane reduction required (0 = none; `lanes` for Fold).
    pub reduction_lanes: usize,
    /// SIMD lanes used.
    pub lanes: usize,
    /// Unroll copies.
    pub copies: usize,
}

impl VirtualPcu {
    /// Pipeline stages the reduction tree adds (log2(lanes) tree levels plus
    /// one accumulation stage — the paper's "at least 5 stages for a full
    /// cross-lane reduction" at 16 lanes).
    pub fn reduction_stages(&self) -> usize {
        if self.reduction_lanes > 1 {
            (self.reduction_lanes as f64).log2().ceil() as usize + 1
        } else {
            0
        }
    }

    /// Total ALU stages including reduction.
    pub fn total_stages(&self) -> usize {
        self.ops.len() + self.reduction_stages()
    }
}

/// A virtual Pattern Memory Unit: one scratchpad plus its address datapaths.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualPmu {
    /// The scratchpad held.
    pub sram: SramId,
    /// Logical capacity in 32-bit words (one buffer).
    pub words: usize,
    /// N-buffer depth (multiplies the capacity requirement).
    pub nbuf: usize,
    /// Banking mode.
    pub banking: BankingMode,
    /// ALU ops on the write-address datapath (max over writers).
    pub write_addr_ops: usize,
    /// ALU ops on the read-address datapath (max over readers).
    pub read_addr_ops: usize,
    /// Unroll copies (scratchpads private to an unrolled subtree are
    /// duplicated with it).
    pub copies: usize,
}

impl VirtualPmu {
    /// Words of SRAM this virtual PMU must provide per copy.
    ///
    /// Duplication banking replicates content in every bank, so the usable
    /// capacity of a physical PMU shrinks by its bank count; we account for
    /// that at allocation time, not here.
    pub fn required_words(&self) -> usize {
        self.words * self.nbuf
    }
}

/// A virtual address generator: one off-chip transfer controller.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualAg {
    /// The transfer controller.
    pub ctrl: CtrlId,
    /// Dense (tile) or sparse (gather/scatter) addressing.
    pub sparse: bool,
    /// Whether data flows to DRAM (store/scatter) or from it.
    pub store: bool,
    /// ALU ops on the AG's scalar address datapath.
    pub addr_ops: usize,
    /// Unroll copies.
    pub copies: usize,
}

/// The complete virtual design of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualDesign {
    /// Virtual compute units (one per compute inner controller).
    pub pcus: Vec<VirtualPcu>,
    /// Virtual memory units (one per scratchpad).
    pub pmus: Vec<VirtualPmu>,
    /// Virtual address generators (one per transfer controller).
    pub ags: Vec<VirtualAg>,
    /// Outer controllers (mapped to switch control boxes).
    pub outers: Vec<CtrlId>,
}

/// Collects the expression nodes needed for *values* (not load addresses):
/// DFS from `roots`, treating `Load` nodes as leaves.
fn value_nodes(f: &Func, roots: &[usize]) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match &f.nodes()[n] {
            Expr::Unary(_, a) => stack.push(a.0 as usize),
            Expr::Binary(_, a, b) => {
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            Expr::Mux(c, a, b) => {
                stack.push(c.0 as usize);
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            // Loads are vector inputs: their address subgraph belongs to the
            // PMU, so we stop here.
            Expr::Load { .. } => {}
            _ => {}
        }
    }
    seen
}

/// Collects all nodes reachable from `roots` (descending through loads too,
/// since nested loads on an address path run on chained PMU datapaths).
fn collect_subgraph(f: &Func, roots: &[usize]) -> HashSet<usize> {
    let mut seen = HashSet::new();
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if !seen.insert(n) {
            continue;
        }
        match &f.nodes()[n] {
            Expr::Unary(_, a) => stack.push(a.0 as usize),
            Expr::Binary(_, a, b) => {
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            Expr::Mux(c, a, b) => {
                stack.push(c.0 as usize);
                stack.push(a.0 as usize);
                stack.push(b.0 as usize);
            }
            Expr::Load { addr, .. } => stack.extend(addr.iter().map(|e| e.0 as usize)),
            _ => {}
        }
    }
    seen
}

fn count_alu(f: &Func, nodes: &HashSet<usize>) -> usize {
    nodes
        .iter()
        .filter(|&&n| {
            matches!(
                f.nodes()[n],
                Expr::Unary(..) | Expr::Binary(..) | Expr::Mux(..)
            )
        })
        .count()
}

/// Number of ALU ops in an entire (scalar) function — for AG and PMU
/// write-address datapaths.
fn func_alu_ops(f: &Func) -> usize {
    let all: HashSet<usize> = (0..f.nodes().len()).collect();
    count_alu(f, &all)
}

/// Extraction of a compute graph from a pattern-body function.
struct GraphExtract {
    ops: Vec<VOp>,
    vec_ins: usize,
    scal_ins: usize,
    /// Func node id → source, for resolving outputs.
    map: Vec<Option<VSrc>>,
}

fn extract_graph(f: &Func) -> GraphExtract {
    let roots: Vec<usize> = f.outputs().iter().map(|o| o.0 as usize).collect();
    let needed = value_nodes(f, &roots);
    let mut ops: Vec<VOp> = Vec::new();
    let mut vec_ins = 0usize;
    let mut scal_ins = 0usize;
    let mut map: Vec<Option<VSrc>> = vec![None; f.nodes().len()];
    for n in 0..f.nodes().len() {
        if !needed.contains(&n) {
            continue;
        }
        let src = match &f.nodes()[n] {
            Expr::Const(_) | Expr::Index(_) | Expr::Arg(_) => VSrc::Free,
            Expr::Param(_) | Expr::ReadReg(_) => {
                scal_ins += 1;
                VSrc::ScalIn(scal_ins - 1)
            }
            Expr::Load { .. } => {
                vec_ins += 1;
                VSrc::VecIn(vec_ins - 1)
            }
            Expr::Unary(op, a) => {
                let srcs = vec![map[a.0 as usize].expect("dep resolved")];
                ops.push(VOp {
                    srcs,
                    heavy: matches!(
                        op,
                        UnaryOp::Exp | UnaryOp::Ln | UnaryOp::Sqrt | UnaryOp::Recip
                    ),
                });
                VSrc::Op(ops.len() - 1)
            }
            Expr::Binary(_, a, b) => {
                let srcs = vec![
                    map[a.0 as usize].expect("dep resolved"),
                    map[b.0 as usize].expect("dep resolved"),
                ];
                ops.push(VOp { srcs, heavy: false });
                VSrc::Op(ops.len() - 1)
            }
            Expr::Mux(c, a, b) => {
                let srcs = vec![
                    map[c.0 as usize].expect("dep resolved"),
                    map[a.0 as usize].expect("dep resolved"),
                    map[b.0 as usize].expect("dep resolved"),
                ];
                ops.push(VOp { srcs, heavy: false });
                VSrc::Op(ops.len() - 1)
            }
        };
        map[n] = Some(src);
    }
    GraphExtract {
        ops,
        vec_ins,
        scal_ins,
        map,
    }
}

fn outputs_of(g: &GraphExtract, f: &Func, slots: impl Iterator<Item = usize>) -> Vec<VSrc> {
    slots
        .map(|s| {
            let node = f.outputs()[s].0 as usize;
            g.map[node].expect("output resolved")
        })
        .collect()
}

/// Builds the virtual design for a program under an analysis.
pub fn build_virtual(p: &Program, an: &Analysis) -> VirtualDesign {
    let mut pcus = Vec::new();
    let mut ags = Vec::new();
    let mut outers = Vec::new();

    // Per-sram address-datapath op maxima.
    let mut write_addr: std::collections::HashMap<SramId, usize> = Default::default();
    let mut read_addr: std::collections::HashMap<SramId, usize> = Default::default();

    let note_read_addrs = |f: &Func, read_addr: &mut std::collections::HashMap<SramId, usize>| {
        for n in f.nodes() {
            if let Expr::Load { mem, addr } = n {
                let roots: Vec<usize> = addr.iter().map(|e| e.0 as usize).collect();
                let ops = count_alu(f, &collect_subgraph(f, &roots));
                let e = read_addr.entry(*mem).or_insert(0);
                *e = (*e).max(ops);
            }
        }
    };

    p.walk(|cid, _| {
        let ctrl = p.ctrl(cid);
        let copies = an.copies[cid.0 as usize];
        let lanes = an.lanes[cid.0 as usize];
        match &ctrl.body {
            CtrlBody::Outer { .. } => outers.push(cid),
            CtrlBody::Inner(op) => match op {
                InnerOp::Map(m) => {
                    let f = p.func(m.body);
                    let g = extract_graph(f);
                    note_read_addrs(f, &mut read_addr);
                    for w in &m.writes {
                        let wf = p.func(w.addr);
                        note_read_addrs(wf, &mut read_addr);
                        let e = write_addr.entry(w.sram).or_insert(0);
                        *e = (*e).max(func_alu_ops(wf));
                    }
                    let outputs = outputs_of(&g, f, m.writes.iter().map(|w| w.value_slot));
                    pcus.push(VirtualPcu {
                        name: ctrl.name.clone(),
                        ctrl: cid,
                        vec_ins: g.vec_ins,
                        scal_ins: g.scal_ins,
                        outputs,
                        vec_outs: m.writes.len(),
                        scal_outs: 0,
                        reduction_lanes: 0,
                        lanes,
                        copies,
                        ops: g.ops,
                    });
                }
                InnerOp::Fold(fl) => {
                    let f = p.func(fl.map);
                    let g = extract_graph(f);
                    note_read_addrs(f, &mut read_addr);
                    for w in &fl.writes {
                        let wf = p.func(w.addr);
                        let e = write_addr.entry(w.sram).or_insert(0);
                        *e = (*e).max(func_alu_ops(wf));
                    }
                    let n_slots = f.outputs().len();
                    let outputs = outputs_of(&g, f, 0..n_slots);
                    pcus.push(VirtualPcu {
                        name: ctrl.name.clone(),
                        ctrl: cid,
                        vec_ins: g.vec_ins,
                        scal_ins: g.scal_ins,
                        outputs,
                        vec_outs: fl.writes.len(),
                        scal_outs: fl.out_regs.iter().flatten().count(),
                        reduction_lanes: if lanes > 1 { lanes } else { 2 },
                        lanes,
                        copies,
                        ops: g.ops,
                    });
                }
                InnerOp::Filter(fi) => {
                    let f = p.func(fi.body);
                    let g = extract_graph(f);
                    note_read_addrs(f, &mut read_addr);
                    let e = write_addr.entry(fi.out).or_insert(0);
                    *e = (*e).max(1); // compaction counter add
                    let n = f.outputs().len();
                    let outputs = outputs_of(&g, f, 0..n);
                    pcus.push(VirtualPcu {
                        name: ctrl.name.clone(),
                        ctrl: cid,
                        vec_ins: g.vec_ins,
                        scal_ins: g.scal_ins,
                        outputs,
                        vec_outs: 1,
                        scal_outs: 1,
                        reduction_lanes: 0,
                        lanes,
                        copies,
                        ops: g.ops,
                    });
                }
                InnerOp::RegWrite(rw) => {
                    let f = p.func(rw.func);
                    let g = extract_graph(f);
                    note_read_addrs(f, &mut read_addr);
                    let outputs = outputs_of(&g, f, 0..1);
                    pcus.push(VirtualPcu {
                        name: ctrl.name.clone(),
                        ctrl: cid,
                        vec_ins: g.vec_ins,
                        scal_ins: g.scal_ins,
                        outputs,
                        vec_outs: 0,
                        scal_outs: 1,
                        reduction_lanes: 0,
                        lanes: 1,
                        copies,
                        ops: g.ops,
                    });
                }
                InnerOp::LoadTile(t) => {
                    ags.push(VirtualAg {
                        ctrl: cid,
                        sparse: false,
                        store: false,
                        addr_ops: func_alu_ops(p.func(t.dram_base)) + 2,
                        copies,
                    });
                    let e = write_addr.entry(t.sram).or_insert(0);
                    *e = (*e).max(1);
                }
                InnerOp::StoreTile(t) => {
                    ags.push(VirtualAg {
                        ctrl: cid,
                        sparse: false,
                        store: true,
                        addr_ops: func_alu_ops(p.func(t.dram_base)) + 2,
                        copies,
                    });
                    let e = read_addr.entry(t.sram).or_insert(0);
                    *e = (*e).max(1);
                }
                InnerOp::Gather(gt) => {
                    ags.push(VirtualAg {
                        ctrl: cid,
                        sparse: true,
                        store: false,
                        addr_ops: func_alu_ops(p.func(gt.base)) + 2,
                        copies,
                    });
                    let e = read_addr.entry(gt.indices).or_insert(0);
                    *e = (*e).max(1);
                    let e = write_addr.entry(gt.dst).or_insert(0);
                    *e = (*e).max(1);
                }
                InnerOp::Scatter(st) => {
                    ags.push(VirtualAg {
                        ctrl: cid,
                        sparse: true,
                        store: true,
                        addr_ops: func_alu_ops(p.func(st.base)) + 2,
                        copies,
                    });
                    let e = read_addr.entry(st.indices).or_insert(0);
                    *e = (*e).max(1);
                    let e = read_addr.entry(st.src).or_insert(0);
                    *e = (*e).max(1);
                }
            },
        }
    });

    // PMUs: scratchpads are replicated to match the unroll of their most
    // parallel accessor — each unrolled consumer gets its own read port,
    // exactly the paper's CNN mapping ("each PCU requires 2 PMUs; one PMU
    // to hold kernel weights, the other to store the output feature map").
    // Broadcast fills from a less-unrolled producer land in every replica.
    let mut pmus = Vec::new();
    for (i, s) in p.srams().iter().enumerate() {
        let sid = SramId(i as u32);
        let copies = an
            .writers(sid)
            .iter()
            .chain(an.readers(sid).iter())
            .map(|c| an.copies[c.0 as usize])
            .max()
            .unwrap_or(1);
        pmus.push(VirtualPmu {
            sram: sid,
            words: s.capacity(),
            nbuf: an.nbuf_of(sid),
            banking: s.banking,
            write_addr_ops: write_addr.get(&sid).copied().unwrap_or(0),
            read_addr_ops: read_addr.get(&sid).copied().unwrap_or(0),
            copies,
        });
    }

    VirtualDesign {
        pcus,
        pmus,
        ags,
        outers,
    }
}

/// Recomputes the parallelization-dependent fields of a virtual design
/// (`copies`, `lanes`, `reduction_lanes` on PCUs; `copies` on PMUs and
/// AGs) from a refreshed analysis, leaving the extracted dataflow graphs
/// untouched. Counterpart of [`Analysis::refresh_unroll`]: after
/// `Program::with_reduced_par`, [`build_virtual`] on the reduced program
/// would produce exactly this design, so the pass manager can restart
/// from the partition pass instead of re-extracting every graph.
pub fn refresh_unroll(v: &mut VirtualDesign, p: &Program, an: &Analysis) {
    for u in &mut v.pcus {
        let id = u.ctrl.0 as usize;
        u.copies = an.copies[id];
        match &p.ctrl(u.ctrl).body {
            // RegWrite pipes are scalar: one lane regardless of counters.
            CtrlBody::Inner(InnerOp::RegWrite(_)) => u.lanes = 1,
            CtrlBody::Inner(InnerOp::Fold(_)) => {
                u.lanes = an.lanes[id];
                u.reduction_lanes = if u.lanes > 1 { u.lanes } else { 2 };
            }
            _ => u.lanes = an.lanes[id],
        }
    }
    for a in &mut v.ags {
        a.copies = an.copies[a.ctrl.0 as usize];
    }
    for m in &mut v.pmus {
        m.copies = an
            .writers(m.sram)
            .iter()
            .chain(an.readers(m.sram).iter())
            .map(|c| an.copies[c.0 as usize])
            .max()
            .unwrap_or(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_ppir::*;

    /// y = sum_i a[i] * b[i] — one fold with two vector inputs and one op.
    fn inner_product() -> Program {
        let mut b = ProgramBuilder::new("ip");
        let sa = b.sram("a", DType::F32, &[64]);
        let sb = b.sram("b", DType::F32, &[64]);
        let acc = b.reg("acc", DType::F32);
        let i = b.counter(0, 64, 1, 16);
        let mut map = Func::new("mul");
        let iv = map.index(i.index);
        let av = map.load(sa, vec![iv]);
        let bv = map.load(sb, vec![iv]);
        let m = map.binary(BinOp::Mul, av, bv);
        map.set_outputs(vec![m]);
        let map = b.func(map);
        let fold = b.inner(
            "dot",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Const(Elem::F32(0.0))],
                out_regs: vec![Some(acc)],
                writes: vec![],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![fold]);
        b.finish(root).unwrap()
    }

    #[test]
    fn inner_product_virtual_shape() {
        let p = inner_product();
        let an = Analysis::run(&p);
        let v = build_virtual(&p, &an);
        assert_eq!(v.pcus.len(), 1);
        let pcu = &v.pcus[0];
        assert_eq!(pcu.ops.len(), 1, "one multiply");
        assert_eq!(pcu.vec_ins, 2, "two load streams");
        assert_eq!(pcu.scal_outs, 1, "fold result to a register");
        assert_eq!(pcu.reduction_lanes, 16);
        // 16-lane reduction: log2(16) + 1 = 5 extra stages (§3.7).
        assert_eq!(pcu.reduction_stages(), 5);
        assert_eq!(pcu.total_stages(), 6);
        assert_eq!(v.pmus.len(), 2);
    }

    #[test]
    fn load_address_math_goes_to_pmu() {
        // body: out = a[2*i + 1] + 1 — the 2*i+1 runs on the PMU.
        let mut b = ProgramBuilder::new("addr");
        let sa = b.sram("a", DType::I32, &[64]);
        let so = b.sram("o", DType::I32, &[64]);
        let i = b.counter(0, 32, 1, 8);
        let mut body = Func::new("body");
        let iv = body.index(i.index);
        let two = body.konst(Elem::I32(2));
        let one = body.konst(Elem::I32(1));
        let t = body.binary(BinOp::Mul, iv, two);
        let addr = body.binary(BinOp::Add, t, one);
        let v = body.load(sa, vec![addr]);
        let r = body.binary(BinOp::Add, v, one);
        body.set_outputs(vec![r]);
        let body = b.func(body);
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let mp = b.inner(
            "m",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: so,
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![mp]);
        let p = b.finish(root).unwrap();
        let an = Analysis::run(&p);
        let v = build_virtual(&p, &an);
        let pcu = &v.pcus[0];
        // Only the final +1 runs on the PCU.
        assert_eq!(pcu.ops.len(), 1);
        // The 2*i+1 (2 ops) runs on the PMU read-address path of `a`.
        let pmu_a = v.pmus.iter().find(|m| m.sram == SramId(0)).unwrap();
        assert_eq!(pmu_a.read_addr_ops, 2);
    }

    #[test]
    fn transfers_become_ags() {
        let mut b = ProgramBuilder::new("xfer");
        let d = b.dram("d", DType::F32, 256);
        let s = b.sram("s", DType::F32, &[64]);
        let mut base = Func::new("base");
        let z = base.konst(Elem::I32(0));
        base.set_outputs(vec![z]);
        let base = b.func(base);
        let ld = b.inner(
            "ld",
            vec![],
            InnerOp::LoadTile(TileTransfer {
                dram: d,
                dram_base: base,
                rows: 1,
                cols: 64,
                dram_row_stride: 64,
                sram: s,
            }),
        );
        let root = b.outer("root", Schedule::Sequential, vec![], vec![ld]);
        let p = b.finish(root).unwrap();
        let an = Analysis::run(&p);
        let v = build_virtual(&p, &an);
        assert_eq!(v.ags.len(), 1);
        assert!(!v.ags[0].sparse);
        assert!(!v.ags[0].store);
        assert_eq!(v.pcus.len(), 0);
    }

    #[test]
    fn nbuf_multiplies_pmu_requirement() {
        let pmu = VirtualPmu {
            sram: SramId(0),
            words: 4096,
            nbuf: 3,
            banking: BankingMode::Strided,
            write_addr_ops: 1,
            read_addr_ops: 1,
            copies: 1,
        };
        assert_eq!(pmu.required_words(), 12288);
    }
}
