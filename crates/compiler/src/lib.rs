//! # plasticine-compiler — pattern IR → Plasticine configurations
//!
//! The compiler pipeline of §3.6 of the paper:
//!
//! 1. [`analysis`] — controller-tree analysis: schedules, unroll factors,
//!    memory producer/consumer relations, N-buffer depths;
//! 2. [`vunit`] — *virtual units*: each inner controller becomes an
//!    unbounded-resource dataflow unit, each scratchpad a virtual PMU with
//!    its address datapaths;
//! 3. `partition` — greedy splitting of virtual PCUs into physical chunks
//!    under the Table 3 limits (also the engine of the Figure 7 DSE);
//! 4. `place` — greedy centroid placement onto the checkerboard grid;
//! 5. `route` — BFS routing over the switch mesh with bounded tracks;
//! 6. `emit` — assembly into a [`plasticine_arch::MachineConfig`].
//!
//! The stages run under a staged pass manager ([`passes`]) with per-pass
//! wall-clock timings and restart-from-stage support (degraded-fabric
//! retries rewind to `partition`, not to `analysis`). The full output can
//! be serialized to a versioned, content-hashed [`Bitstream`] artifact
//! ([`artifact`]) and compilation can be memoized through a thread-safe
//! [`CompileCache`] ([`cache`]) keyed by stable content hashes.
//!
//! # Examples
//!
//! ```no_run
//! use plasticine_arch::PlasticineParams;
//! use plasticine_compiler::compile;
//! # fn get_program() -> plasticine_ppir::Program { unimplemented!() }
//! let program = get_program();
//! let out = compile(&program, &PlasticineParams::paper_final())?;
//! println!("{} PCUs used", out.config.usage.pcus);
//! # Ok::<(), plasticine_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod artifact;
pub mod cache;
mod emit;
mod error;
pub mod partition;
pub mod passes;
mod place;
mod route;
pub mod vunit;

pub use analysis::{Access, Analysis};
pub use artifact::Bitstream;
pub use cache::{CacheKey, CachedCompile, CompileCache};
pub use error::CompileError;
pub use partition::{partition, pcus_required, ChunkStats, PartitionError};
pub use passes::{
    compile, compile_degraded, compile_with, CompileOptions, CompileOutput, PassId, PassTimings,
};
pub use place::{place, pmus_per_copy, Placement};
pub use route::{path_hops, RouteLimits, Router};
pub use vunit::{
    build_virtual, refresh_unroll, VOp, VSrc, VirtualAg, VirtualDesign, VirtualPcu, VirtualPmu,
};
