//! Static routing over the switch fabric.
//!
//! Each producer→consumer connection is routed as a shortest path over the
//! switch mesh with bounded tracks per edge and network class, mirroring
//! the statically-configured interconnect of §3.3. Routes are pipelined
//! (one cycle per hop) — the hop count becomes the link's latency in the
//! simulator.

use crate::error::CompileError;
use plasticine_arch::{FaultMap, NetClass, SwitchId, Topology};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Track budget per mesh edge, per direction, per network class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteLimits {
    /// Vector buses per edge.
    pub vector_tracks: usize,
    /// Scalar word links per edge.
    pub scalar_tracks: usize,
    /// Control bit links per edge.
    pub control_tracks: usize,
}

impl Default for RouteLimits {
    fn default() -> RouteLimits {
        // Each unrolled copy is routed as its own point-to-point connection
        // (no multicast/bus sharing, which the real static network
        // provides), so the per-edge budget is set accordingly.
        RouteLimits {
            vector_tracks: 8,
            scalar_tracks: 12,
            control_tracks: 24,
        }
    }
}

/// Incremental router holding per-edge usage.
#[derive(Debug)]
pub struct Router<'t> {
    topo: &'t Topology,
    limits: RouteLimits,
    usage: HashMap<(SwitchId, SwitchId, NetClass), usize>,
    /// Hard-faulted mesh links (undirected, canonical lower-id-first order);
    /// never traversed in either direction.
    dead_links: BTreeSet<(SwitchId, SwitchId)>,
}

impl<'t> Router<'t> {
    /// Creates a router over a pristine topology.
    pub fn new(topo: &'t Topology, limits: RouteLimits) -> Router<'t> {
        Router::degraded(topo, limits, &FaultMap::default())
    }

    /// Creates a router that refuses to use the fault map's dead links.
    pub fn degraded(topo: &'t Topology, limits: RouteLimits, faults: &FaultMap) -> Router<'t> {
        Router {
            topo,
            limits,
            usage: HashMap::new(),
            dead_links: faults.dead_links.clone(),
        }
    }

    fn edge_dead(&self, a: SwitchId, b: SwitchId) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.dead_links.contains(&key)
    }

    fn budget(&self, class: NetClass) -> usize {
        match class {
            NetClass::Vector => self.limits.vector_tracks,
            NetClass::Scalar => self.limits.scalar_tracks,
            NetClass::Control => self.limits.control_tracks,
        }
    }

    /// Routes a connection, consuming track capacity along the path.
    ///
    /// Returns the switch path including both endpoints. The link's pipeline
    /// latency is `path.len() + 1` cycles (on-ramp, registered hops,
    /// off-ramp).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Unroutable`] if no path has spare tracks.
    pub fn route(
        &mut self,
        from: SwitchId,
        to: SwitchId,
        class: NetClass,
    ) -> Result<Vec<SwitchId>, CompileError> {
        if from == to {
            return Ok(vec![from]);
        }
        let budget = self.budget(class);
        let mut prev: HashMap<SwitchId, SwitchId> = HashMap::new();
        let mut q = VecDeque::new();
        q.push_back(from);
        prev.insert(from, from);
        while let Some(cur) = q.pop_front() {
            if cur == to {
                break;
            }
            for nb in self.topo.switch_neighbors(cur) {
                if prev.contains_key(&nb) || self.edge_dead(cur, nb) {
                    continue;
                }
                let used = self.usage.get(&(cur, nb, class)).copied().unwrap_or(0);
                if used >= budget {
                    continue;
                }
                prev.insert(nb, cur);
                q.push_back(nb);
            }
        }
        if !prev.contains_key(&to) {
            // With dead links in play the failure is a fabric-degradation
            // problem, not a track-budget problem.
            if !self.dead_links.is_empty() {
                return Err(CompileError::InsufficientFabric {
                    kind: "link",
                    need: 1,
                    have: 0,
                    faulted: self.dead_links.len(),
                });
            }
            return Err(CompileError::Unroutable {
                class: match class {
                    NetClass::Vector => "vector",
                    NetClass::Scalar => "scalar",
                    NetClass::Control => "control",
                },
            });
        }
        // Reconstruct and commit.
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        for w in path.windows(2) {
            *self.usage.entry((w[0], w[1], class)).or_insert(0) += 1;
        }
        Ok(path)
    }

    /// Total track-segments consumed so far (for reporting).
    pub fn segments_used(&self) -> usize {
        self.usage.values().sum()
    }
}

/// Latency in cycles of a routed path (on-ramp + registered hops + off-ramp).
pub fn path_hops(path: &[SwitchId]) -> usize {
    path.len() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::PlasticineParams;

    fn topo() -> Topology {
        Topology::new(&PlasticineParams::paper_final())
    }

    #[test]
    fn shortest_path_has_manhattan_length() {
        let t = topo();
        let mut r = Router::new(&t, RouteLimits::default());
        let a = t.switch_at(0, 0);
        let b = t.switch_at(5, 3);
        let path = r.route(a, b, NetClass::Vector).unwrap();
        assert_eq!(path.len(), 9); // 8 hops + origin
        assert_eq!(path[0], a);
        assert_eq!(*path.last().unwrap(), b);
        assert_eq!(path_hops(&path), 10);
    }

    #[test]
    fn same_switch_is_trivial() {
        let t = topo();
        let mut r = Router::new(&t, RouteLimits::default());
        let a = t.switch_at(2, 2);
        let path = r.route(a, a, NetClass::Scalar).unwrap();
        assert_eq!(path, vec![a]);
    }

    #[test]
    fn congestion_forces_detours_then_fails() {
        let t = topo();
        let mut r = Router::new(
            &t,
            RouteLimits {
                vector_tracks: 1,
                scalar_tracks: 1,
                control_tracks: 1,
            },
        );
        let a = t.switch_at(0, 0);
        let b = t.switch_at(1, 0);
        // First route takes the direct edge.
        let p1 = r.route(a, b, NetClass::Vector).unwrap();
        assert_eq!(p1.len(), 2);
        // Second route must detour.
        let p2 = r.route(a, b, NetClass::Vector).unwrap();
        assert!(p2.len() > 2, "expected detour, got {:?}", p2.len());
        // Saturate every edge out of `a`: route to both neighbors repeatedly
        // until nothing is left, then expect failure.
        let mut failed = false;
        for _ in 0..8 {
            if r.route(a, b, NetClass::Vector).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "router should eventually run out of tracks");
    }

    #[test]
    fn classes_have_independent_budgets() {
        let t = topo();
        let mut r = Router::new(
            &t,
            RouteLimits {
                vector_tracks: 1,
                scalar_tracks: 1,
                control_tracks: 1,
            },
        );
        let a = t.switch_at(0, 0);
        let b = t.switch_at(1, 0);
        let v = r.route(a, b, NetClass::Vector).unwrap();
        let s = r.route(a, b, NetClass::Scalar).unwrap();
        let c = r.route(a, b, NetClass::Control).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(s.len(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dead_links_force_detours_and_report_insufficient_fabric() {
        let t = topo();
        let a = t.switch_at(0, 0);
        let b = t.switch_at(1, 0);
        let c = t.switch_at(0, 1);
        let mut faults = FaultMap::default();
        faults
            .dead_links
            .insert(if a <= b { (a, b) } else { (b, a) });
        let mut r = Router::degraded(&t, RouteLimits::default(), &faults);
        // The direct edge is dead; the route must detour around it.
        let p = r.route(a, b, NetClass::Vector).unwrap();
        assert!(p.len() > 2, "expected a detour, got {p:?}");
        // Cutting the corner off entirely strands `a`.
        faults
            .dead_links
            .insert(if a <= c { (a, c) } else { (c, a) });
        let mut r = Router::degraded(&t, RouteLimits::default(), &faults);
        let err = r.route(a, b, NetClass::Vector).unwrap_err();
        assert!(
            matches!(err, CompileError::InsufficientFabric { kind: "link", .. }),
            "{err}"
        );
    }

    #[test]
    fn usage_accumulates() {
        let t = topo();
        let mut r = Router::new(&t, RouteLimits::default());
        assert_eq!(r.segments_used(), 0);
        r.route(t.switch_at(0, 0), t.switch_at(3, 0), NetClass::Vector)
            .unwrap();
        assert_eq!(r.segments_used(), 3);
    }
}
