//! Compiler error type.

use crate::partition::PartitionError;
use plasticine_arch::{ParamError, PartitionSpecError};
use std::fmt;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The architecture parameters are internally inconsistent.
    BadParams(ParamError),
    /// The requested fabric partition is malformed or does not fit the
    /// parameters.
    BadPartition(PartitionSpecError),
    /// A virtual unit cannot be realized under the parameters.
    Partition(PartitionError),
    /// The design needs more physical resources than the chip has.
    OutOfResources {
        /// Resource kind ("PCU", "PMU", "AG").
        kind: &'static str,
        /// Units required.
        need: usize,
        /// Units available.
        have: usize,
    },
    /// The router could not find a path within the track budget.
    Unroutable {
        /// Network class that ran out of tracks.
        class: &'static str,
    },
    /// The surviving (fault-degraded) fabric genuinely lacks the capacity
    /// the design needs. Distinguished from [`CompileError::OutOfResources`]
    /// so callers can tell "the program is too big for the chip" from "the
    /// chip has degraded below what this program needs".
    InsufficientFabric {
        /// Resource kind ("PCU", "PMU", "link", "DRAM channel").
        kind: &'static str,
        /// Units required.
        need: usize,
        /// Surviving units available.
        have: usize,
        /// Units removed by the fault map.
        faulted: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadParams(e) => write!(f, "{e}"),
            CompileError::BadPartition(e) => write!(f, "{e}"),
            CompileError::Partition(e) => write!(f, "{e}"),
            CompileError::OutOfResources { kind, need, have } => {
                write!(f, "out of {kind}s: need {need}, have {have}")
            }
            CompileError::Unroutable { class } => {
                write!(f, "unroutable: {class} network out of tracks")
            }
            CompileError::InsufficientFabric {
                kind,
                need,
                have,
                faulted,
            } => {
                write!(
                    f,
                    "insufficient fabric: need {need} {kind}(s), only {have} survive \
                     ({faulted} removed by faults)"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::BadParams(e) => Some(e),
            CompileError::BadPartition(e) => Some(e),
            CompileError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PartitionError> for CompileError {
    fn from(e: PartitionError) -> CompileError {
        CompileError::Partition(e)
    }
}

impl From<ParamError> for CompileError {
    fn from(e: ParamError) -> CompileError {
        CompileError::BadParams(e)
    }
}

impl From<PartitionSpecError> for CompileError {
    fn from(e: PartitionSpecError) -> CompileError {
        CompileError::BadPartition(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CompileError::OutOfResources {
            kind: "PCU",
            need: 80,
            have: 64,
        };
        assert!(e.to_string().contains("80"));
        assert!(e.to_string().contains("64"));
    }
}
