//! Staged pass manager: the §3.6 pipeline as named, timed passes.
//!
//! Compilation runs six passes in order, each producing a typed artifact
//! consumed by the next:
//!
//! | pass        | artifact                              |
//! |-------------|---------------------------------------|
//! | `analysis`  | [`Analysis`]                          |
//! | `vunit`     | [`VirtualDesign`]                     |
//! | `partition` | `Vec<Vec<ChunkStats>>` (+ lane clamp) |
//! | `place`     | [`Placement`]                         |
//! | `route`     | units + links                         |
//! | `emit`      | [`CompileOutput`]                     |
//!
//! Every pass is timed; the wall-clock per pass is recorded in
//! [`CompileOutput::timings`] (and deliberately excluded from the
//! serialized [`Bitstream`](crate::Bitstream), which must be
//! content-deterministic).
//!
//! The manager supports *restart from a stage*: degraded-fabric
//! recompilation ([`compile_degraded`]) reacts to
//! [`CompileError::InsufficientFabric`] by reducing a parallelization
//! factor — a change that invalidates only the unroll factors, not the
//! controller-tree structure or the extracted dataflow graphs — so it
//! rewinds to the `partition` pass via [`Analysis::refresh_unroll`] and
//! [`vunit::refresh_unroll`](crate::vunit::refresh_unroll) instead of
//! re-running `analysis` and `vunit` from scratch.

use crate::analysis::Analysis;
use crate::emit;
use crate::error::CompileError;
use crate::partition::{partition, ChunkStats};
use crate::place::{place, Placement};
use crate::route::RouteLimits;
use crate::vunit::{build_virtual, refresh_unroll, VirtualDesign};
use plasticine_arch::Topology;
use plasticine_ppir::Program;
use std::time::{Duration, Instant};

/// Identifier of one compiler pass, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PassId {
    /// Controller-tree analysis.
    Analysis,
    /// Virtual-unit extraction.
    Vunit,
    /// Lane clamping + splitting virtual PCUs into physical chunks.
    Partition,
    /// Site placement.
    Place,
    /// Unit construction + link routing.
    Route,
    /// Final assembly into a `MachineConfig`.
    Emit,
}

impl PassId {
    /// The pass's name as shown in timing summaries.
    pub fn name(self) -> &'static str {
        match self {
            PassId::Analysis => "analysis",
            PassId::Vunit => "vunit",
            PassId::Partition => "partition",
            PassId::Place => "place",
            PassId::Route => "route",
            PassId::Emit => "emit",
        }
    }

    /// All passes, in pipeline order.
    pub fn all() -> [PassId; 6] {
        [
            PassId::Analysis,
            PassId::Vunit,
            PassId::Partition,
            PassId::Place,
            PassId::Route,
            PassId::Emit,
        ]
    }
}

/// Wall-clock spent in each pass of one compilation.
///
/// A degraded-fabric compilation may run the `partition`..`emit` passes
/// several times (once per parallelization reduction); each run appends
/// an entry, so summing entries per pass gives the true cost.
#[derive(Debug, Clone, Default)]
pub struct PassTimings {
    entries: Vec<(PassId, Duration)>,
}

impl PassTimings {
    /// Every `(pass, duration)` entry recorded, in execution order.
    pub fn entries(&self) -> &[(PassId, Duration)] {
        &self.entries
    }

    /// Total wall-clock across all passes.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Total time spent in one pass (summed over restarts).
    pub fn of(&self, pass: PassId) -> Duration {
        self.entries
            .iter()
            .filter(|(p, _)| *p == pass)
            .map(|(_, d)| *d)
            .sum()
    }

    /// One-line-per-pass human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for pass in PassId::all() {
            let runs = self.entries.iter().filter(|(p, _)| *p == pass).count();
            if runs == 0 {
                continue;
            }
            let d = self.of(pass);
            let _ = write!(s, "  {:<9} {:>9.3} ms", pass.name(), d.as_secs_f64() * 1e3);
            if runs > 1 {
                let _ = write!(s, "  ({runs} runs)");
            }
            s.push('\n');
        }
        let _ = write!(
            s,
            "  {:<9} {:>9.3} ms",
            "total",
            self.total().as_secs_f64() * 1e3
        );
        s
    }

    fn record<T>(&mut self, pass: PassId, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.entries.push((pass, t0.elapsed()));
        out
    }
}

/// Everything the compiler produces: the runnable configuration plus the
/// intermediate artifacts the area models and DSE consume.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The placed-and-routed configuration.
    pub config: plasticine_arch::MachineConfig,
    /// Virtual design before partitioning (lanes clamped to the target).
    pub virtual_design: VirtualDesign,
    /// Partition result per virtual PCU.
    pub chunks: Vec<Vec<ChunkStats>>,
    /// Physical placement.
    pub placement: Placement,
    /// Controller-tree analysis.
    pub analysis: Analysis,
    /// Per-pass wall-clock of this compilation. Not part of the
    /// serialized bitstream (timings are not deterministic content).
    pub timings: PassTimings,
}

/// Compilation options beyond the architecture parameters.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Routing track budgets.
    pub route_limits: RouteLimits,
    /// Fault map to compile around: dead sites/links are blacklisted from
    /// placement and routing. Default is a pristine chip.
    pub faults: plasticine_arch::FaultMap,
    /// Fabric partition to compile into. `None` (the default) targets the
    /// whole chip; `Some` confines placement and routing to the band by
    /// masking everything outside it as dead fabric, and records the band
    /// in the emitted [`MachineConfig`](plasticine_arch::MachineConfig).
    /// Because this struct keys the [`CompileCache`](crate::CompileCache),
    /// bitstreams are partition-geometry-aware automatically.
    pub partition: Option<plasticine_arch::Partition>,
}

impl CompileOptions {
    /// Default options.
    pub fn new() -> CompileOptions {
        CompileOptions::default()
    }
}

/// Compiles a program for a parameter set (§3.6's full pipeline: virtual
/// units → partitioning → placement → routing → configuration).
///
/// # Errors
///
/// Returns [`CompileError`] if the parameters are invalid, a virtual unit
/// cannot be partitioned, the chip runs out of units, or routing fails.
pub fn compile(
    p: &Program,
    params: &plasticine_arch::PlasticineParams,
) -> Result<CompileOutput, CompileError> {
    compile_with(p, params, &CompileOptions::new())
}

/// [`compile`] with explicit options.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with(
    p: &Program,
    params: &plasticine_arch::PlasticineParams,
    opts: &CompileOptions,
) -> Result<CompileOutput, CompileError> {
    params.validate()?;
    let mut t = PassTimings::default();
    let an = t.record(PassId::Analysis, || Analysis::run(p));
    let v = t.record(PassId::Vunit, || build_virtual(p, &an));
    let mut out = run_from_partition(p, params, opts, &an, &v, &mut t)?;
    out.timings = t;
    Ok(out)
}

/// [`compile_with`] that degrades gracefully on a faulted fabric: when the
/// surviving units cannot host the program at its requested parallelization
/// ([`CompileError::InsufficientFabric`]), the compiler halves the largest
/// parallelization factor and retries until the program fits or every
/// counter is serial. Returns the output together with the (possibly
/// reduced) program actually compiled — the simulator must execute that
/// program, not the original — and one human-readable note per reduction.
///
/// Retries restart from the `partition` pass: a `par` change invalidates
/// only unroll factors, so the analysis and virtual-unit passes run once
/// and are refreshed in place.
///
/// On a pristine fabric the first attempt succeeds and this is exactly
/// [`compile_with`].
///
/// # Errors
///
/// Same as [`compile_with`]; [`CompileError::InsufficientFabric`] is only
/// returned once parallelization reduction is exhausted.
pub fn compile_degraded(
    p: &Program,
    params: &plasticine_arch::PlasticineParams,
    opts: &CompileOptions,
) -> Result<(CompileOutput, Program, Vec<String>), CompileError> {
    params.validate()?;
    let mut t = PassTimings::default();
    let mut cur = p.clone();
    let mut an = t.record(PassId::Analysis, || Analysis::run(&cur));
    let mut v = t.record(PassId::Vunit, || build_virtual(&cur, &an));
    let mut notes = Vec::new();
    loop {
        match run_from_partition(&cur, params, opts, &an, &v, &mut t) {
            Ok(mut out) => {
                out.timings = t;
                return Ok((out, cur, notes));
            }
            Err(e @ CompileError::InsufficientFabric { .. }) => match cur.with_reduced_par() {
                Some((reduced, desc)) => {
                    notes.push(format!("{desc} ({e})"));
                    cur = reduced;
                    // Restart from `partition`: refresh only the
                    // par-dependent vectors of the cached artifacts.
                    an.refresh_unroll(&cur);
                    refresh_unroll(&mut v, &cur, &an);
                }
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// Runs the `partition → place → route → emit` suffix of the pipeline on
/// already-computed analysis/vunit artifacts (the restart point for
/// degraded-fabric retries).
fn run_from_partition(
    p: &Program,
    params: &plasticine_arch::PlasticineParams,
    opts: &CompileOptions,
    an: &Analysis,
    v: &VirtualDesign,
    t: &mut PassTimings,
) -> Result<CompileOutput, CompileError> {
    let mut v = v.clone();
    let chunks = t.record(PassId::Partition, || {
        clamp_lanes(&mut v, params);
        v.pcus
            .iter()
            .map(|u| partition(u, &params.pcu))
            .collect::<Result<Vec<_>, _>>()
    })?;

    let topo = Topology::new(params);
    // A partition confines place-and-route by masking everything outside
    // the band as dead fabric — the existing fault-blacklisting machinery
    // then does the rest (including par-reduction retries when the band is
    // too small for the requested parallelization).
    if let Some(band) = &opts.partition {
        band.validate(params)?;
    }
    let eff_faults = match &opts.partition {
        Some(band) => band.masked(&topo, &opts.faults),
        None => opts.faults.clone(),
    };
    let placement = t.record(PassId::Place, || {
        place(
            p,
            an,
            &v,
            &chunks,
            params,
            &topo,
            &eff_faults,
            opts.partition.as_ref(),
        )
    })?;

    let (units, links) = t.record(PassId::Route, || {
        emit::route(
            p,
            an,
            &v,
            &chunks,
            &placement,
            &topo,
            opts.route_limits,
            &eff_faults,
        )
    })?;

    let config = t.record(PassId::Emit, || {
        emit::assemble(p, params, &v, &placement, units, links, opts.partition)
    });

    Ok(CompileOutput {
        config,
        virtual_design: v,
        chunks,
        placement,
        analysis: an.clone(),
        timings: PassTimings::default(),
    })
}

/// Clamps SIMD widths to the architecture: an innermost `par` wider than
/// the PCU's lanes is realized as extra unroll copies.
fn clamp_lanes(v: &mut VirtualDesign, params: &plasticine_arch::PlasticineParams) {
    for u in &mut v.pcus {
        if u.lanes > params.pcu.lanes {
            u.copies *= u.lanes.div_ceil(params.pcu.lanes);
            if u.reduction_lanes > 1 {
                u.reduction_lanes = params.pcu.lanes;
            }
            u.lanes = params.pcu.lanes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasticine_arch::{FaultMap, PlasticineParams};

    /// Reduced-par retry must equal a from-scratch compile of the reduced
    /// program: restart-from-partition refreshes, full pipeline verifies.
    #[test]
    fn restart_from_partition_matches_full_recompile() {
        let p = crate::emit::tests::vadd_tiled(4);
        let (reduced, _) = p.with_reduced_par().unwrap();

        // Refreshed artifacts (the restart path)...
        let mut an = Analysis::run(&p);
        let mut v = build_virtual(&p, &an);
        an.refresh_unroll(&reduced);
        refresh_unroll(&mut v, &reduced, &an);

        // ...must match artifacts computed from scratch.
        let an2 = Analysis::run(&reduced);
        let v2 = build_virtual(&reduced, &an2);
        assert_eq!(an.copies, an2.copies);
        assert_eq!(an.lanes, an2.lanes);
        assert_eq!(an.anc_copies, an2.anc_copies);
        assert_eq!(v, v2);
    }

    #[test]
    fn timings_cover_every_pass() {
        let p = crate::emit::tests::vadd_tiled(1);
        let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
        for pass in PassId::all() {
            let runs = out
                .timings
                .entries()
                .iter()
                .filter(|(id, _)| *id == pass)
                .count();
            assert_eq!(runs, 1, "pass {} should run exactly once", pass.name());
        }
        assert!(out.timings.total() > Duration::ZERO);
        assert!(out.timings.summary().contains("partition"));
    }

    /// The relocation invariant behind multi-tenant bitstreams: the same
    /// program compiled for the same band geometry at two offsets is the
    /// same placement translated vertically — and the artifacts still hash
    /// differently (they configure different physical resources).
    #[test]
    fn partition_compiles_relocate_across_offsets() {
        let p = crate::emit::tests::vadd_tiled(2);
        let params = PlasticineParams::paper_final();
        let band = plasticine_arch::Partition::new(0, 4, 2);
        let mut lo = CompileOptions::new();
        lo.partition = Some(band);
        let mut hi = CompileOptions::new();
        hi.partition = Some(band.at_offset(4));
        let c_lo = compile_with(&p, &params, &lo).unwrap();
        let c_hi = compile_with(&p, &params, &hi).unwrap();

        // The offset-4 config is exactly the offset-0 config translated.
        assert_eq!(
            c_hi.config.normalized().to_json().compact(),
            c_lo.config.to_json().compact()
        );
        // Distinct physical resources ⇒ distinct bitstream hashes.
        let b_lo = crate::Bitstream::new(&p, c_lo, Vec::new());
        let b_hi = crate::Bitstream::new(&p, c_hi, Vec::new());
        assert_ne!(b_lo.content_hash, b_hi.content_hash);
    }

    /// Partition bounds are checked before placement.
    #[test]
    fn bad_partition_is_a_typed_error() {
        let p = crate::emit::tests::vadd_tiled(1);
        let mut opts = CompileOptions::new();
        opts.partition = Some(plasticine_arch::Partition::new(6, 4, 1));
        let err = compile_with(&p, &PlasticineParams::paper_final(), &opts).unwrap_err();
        assert!(matches!(err, CompileError::BadPartition(_)), "{err}");
    }

    /// A band too small for the requested parallelization triggers the
    /// same degraded-compile par-reduction path as a faulted fabric.
    #[test]
    fn small_partition_reduces_parallelization() {
        let p = crate::emit::tests::vadd_tiled(8);
        let params = PlasticineParams::paper_final();
        let mut opts = CompileOptions::new();
        opts.partition = Some(plasticine_arch::Partition::new(0, 1, 1));
        let (out, _, notes) = compile_degraded(&p, &params, &opts).unwrap();
        assert!(!notes.is_empty(), "expected at least one par reduction");
        assert_eq!(out.config.partition, opts.partition);
    }

    #[test]
    fn degraded_retries_rerun_partition_but_not_analysis() {
        // Kill most of the fabric so par-8 vadd cannot fit and the
        // compiler must reduce parallelization at least once.
        let p = crate::emit::tests::vadd_tiled(8);
        let params = PlasticineParams::paper_final();
        let mut opts = CompileOptions::new();
        opts.faults = FaultMap::sample(
            &Topology::new(&params),
            &plasticine_arch::FaultSpec {
                pcus: 60,
                seed: 7,
                ..Default::default()
            },
            4,
        );
        let (out, _, notes) = compile_degraded(&p, &params, &opts).unwrap();
        assert!(!notes.is_empty(), "expected at least one par reduction");
        let analysis_runs = out
            .timings
            .entries()
            .iter()
            .filter(|(id, _)| *id == PassId::Analysis)
            .count();
        let partition_runs = out
            .timings
            .entries()
            .iter()
            .filter(|(id, _)| *id == PassId::Partition)
            .count();
        assert_eq!(analysis_runs, 1, "analysis must not be re-run on retries");
        assert_eq!(partition_runs, 1 + notes.len());
    }
}
