//! Property-based tests for the partitioner and router.

use plasticine_arch::{NetClass, PcuParams, PlasticineParams, Topology};
use plasticine_compiler::{partition, RouteLimits, Router, VOp, VSrc, VirtualPcu};
use plasticine_ppir::CtrlId;
use proptest::prelude::*;

/// Random DAG of ops: each op consumes 1–2 sources drawn from earlier ops
/// or vector inputs.
fn random_unit() -> impl Strategy<Value = VirtualPcu> {
    (1usize..60, 1usize..4, any::<u64>(), any::<bool>()).prop_map(|(n_ops, n_vin, seed, reduce)| {
        let mut ops = Vec::with_capacity(n_ops);
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        for i in 0..n_ops {
            let n_srcs = 1 + (next() % 2) as usize;
            let srcs = (0..n_srcs)
                .map(|_| {
                    let pick = next() as usize % (i + n_vin);
                    if pick < i {
                        VSrc::Op(pick)
                    } else {
                        VSrc::VecIn(pick - i)
                    }
                })
                .collect();
            ops.push(VOp { srcs, heavy: false });
        }
        VirtualPcu {
            name: "rand".into(),
            ctrl: CtrlId(0),
            outputs: vec![VSrc::Op(n_ops - 1)],
            ops,
            vec_ins: n_vin,
            scal_ins: 0,
            vec_outs: 1,
            scal_outs: if reduce { 1 } else { 0 },
            reduction_lanes: if reduce { 16 } else { 0 },
            lanes: 16,
            copies: 1,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_chunks_respect_all_limits(v in random_unit()) {
        let p = PcuParams::paper_final();
        if let Ok(chunks) = partition(&v, &p) {
            prop_assert!(!chunks.is_empty());
            for c in &chunks {
                prop_assert!(c.stages <= p.stages, "stages {}", c.stages);
                prop_assert!(c.max_live <= p.regs_per_stage);
                prop_assert!(c.vec_ins <= p.vector_ins);
                prop_assert!(c.vec_outs <= p.vector_outs);
                prop_assert!(c.scal_ins <= p.scalar_ins);
                prop_assert!(c.scal_outs <= p.scalar_outs);
            }
            // Op conservation: ALU stages across chunks ≥ op count
            // (reduction stages add on top).
            let total: usize = chunks.iter().map(|c| c.stages).sum();
            let red = if v.reduction_lanes > 1 { 5 } else { 0 };
            prop_assert!(total >= v.ops.len() + red || v.ops.is_empty());
            prop_assert!(total <= v.ops.len() + red + chunks.len());
        }
    }

    #[test]
    fn more_generous_params_never_need_more_chunks(v in random_unit()) {
        let tight = PcuParams::paper_final();
        let mut loose = tight;
        loose.stages = 16;
        loose.regs_per_stage = 16;
        loose.vector_ins = 10;
        loose.vector_outs = 6;
        if let (Ok(a), Ok(b)) = (partition(&v, &tight), partition(&v, &loose)) {
            prop_assert!(b.len() <= a.len(), "loose {} > tight {}", b.len(), a.len());
        }
    }

    #[test]
    fn router_paths_are_connected_and_within_budget(
        pairs in prop::collection::vec(((0usize..17, 0usize..9), (0usize..17, 0usize..9)), 1..40)
    ) {
        let topo = Topology::new(&PlasticineParams::paper_final());
        let mut router = Router::new(&topo, RouteLimits::default());
        let mut edge_use: std::collections::HashMap<_, usize> = Default::default();
        for ((ax, ay), (bx, by)) in pairs {
            let a = topo.switch_at(ax, ay);
            let b = topo.switch_at(bx, by);
            let Ok(path) = router.route(a, b, NetClass::Vector) else {
                // Saturation is a legal outcome; budgets were respected up
                // to this point, which is what the counters below check.
                continue;
            };
            prop_assert_eq!(path[0], a);
            prop_assert_eq!(*path.last().unwrap(), b);
            for w in path.windows(2) {
                prop_assert_eq!(topo.switch_distance(w[0], w[1]), 1, "non-adjacent hop");
                *edge_use.entry((w[0], w[1])).or_default() += 1;
            }
        }
        for (_, n) in edge_use {
            prop_assert!(n <= RouteLimits::default().vector_tracks);
        }
    }
}
