//! Shared FNV-1a (64-bit) hashing.
//!
//! The workspace content-hashes several artifacts — the compile cache key,
//! serialized `Bitstream`s, simulation `Checkpoint`s, and the proptest
//! shim's per-property seed derivation. All of them use the same FNV-1a
//! algorithm; this module is the single implementation so the digests are
//! pinned in exactly one place.
//!
//! FNV-1a is *not* cryptographic. It is used here purely for
//! content-addressing and corruption detection of artifacts this
//! repository itself produced.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Streaming FNV-1a hasher, for call sites that fold bytes incrementally
/// (e.g. hashing a `Debug` rendering without buffering it).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// FNV-1a digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// FNV-1a digest of a string's UTF-8 bytes.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known FNV-1a 64-bit test vectors (from the reference
    /// implementation's published vector set).
    #[test]
    fn pinned_digests() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
        assert_eq!(fnv1a_str("foobar"), fnv1a(b"foobar"));
    }
}
