//! Helpers for reading structured objects back out of [`Json`] trees with
//! uniform error messages.
//!
//! Artifact decoders (DRAM/simulator checkpoints and similar) all need the
//! same "fetch this field as that type or fail with its name" shape; these
//! free functions keep the call sites one line each.

use crate::Json;

/// Result alias used by the decode helpers.
pub type R<T> = Result<T, String>;

/// Fetches object member `k`, or fails naming it.
pub fn field<'a>(j: &'a Json, k: &str) -> R<&'a Json> {
    j.get(k).ok_or_else(|| format!("missing field `{k}`"))
}

/// Fetches member `k` as a `u64`.
pub fn u64_of(j: &Json, k: &str) -> R<u64> {
    field(j, k)?
        .as_u64()
        .ok_or_else(|| format!("field `{k}` is not an unsigned integer"))
}

/// Fetches member `k` as a `usize`.
pub fn usize_of(j: &Json, k: &str) -> R<usize> {
    field(j, k)?
        .as_usize()
        .ok_or_else(|| format!("field `{k}` is not an unsigned integer"))
}

/// Fetches member `k` as a `bool`.
pub fn bool_of(j: &Json, k: &str) -> R<bool> {
    field(j, k)?
        .as_bool()
        .ok_or_else(|| format!("field `{k}` is not a bool"))
}

/// Fetches member `k` as a [`Json::hex`]-encoded `u64`.
pub fn hex_of(j: &Json, k: &str) -> R<u64> {
    field(j, k)?
        .as_hex()
        .ok_or_else(|| format!("field `{k}` is not a hex string"))
}

/// Fetches member `k` as a string slice.
pub fn str_of<'a>(j: &'a Json, k: &str) -> R<&'a str> {
    field(j, k)?
        .as_str()
        .ok_or_else(|| format!("field `{k}` is not a string"))
}

/// Fetches member `k` as an array slice.
pub fn arr_of<'a>(j: &'a Json, k: &str) -> R<&'a [Json]> {
    field(j, k)?
        .as_arr()
        .ok_or_else(|| format!("field `{k}` is not an array"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_fetch_and_name_failures() {
        let j = Json::obj([
            ("n", Json::from(7u64)),
            ("b", Json::from(true)),
            ("h", Json::hex(u64::MAX)),
            ("s", Json::from("x")),
            ("a", Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(u64_of(&j, "n").unwrap(), 7);
        assert_eq!(usize_of(&j, "n").unwrap(), 7);
        assert!(bool_of(&j, "b").unwrap());
        assert_eq!(hex_of(&j, "h").unwrap(), u64::MAX);
        assert_eq!(str_of(&j, "s").unwrap(), "x");
        assert_eq!(arr_of(&j, "a").unwrap().len(), 1);
        assert!(u64_of(&j, "zz").unwrap_err().contains("zz"));
        assert!(bool_of(&j, "n").unwrap_err().contains("not a bool"));
    }
}
