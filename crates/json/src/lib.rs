//! # plasticine-json — a minimal, dependency-free JSON toolkit
//!
//! The workspace serializes three kinds of artifacts as JSON: configuration
//! "bitstreams" (`plasticine-arch`), Chrome-trace-viewer event streams and
//! machine-readable stats snapshots (`plasticine-sim` / `plasticine-run`),
//! and the golden-stats regression baselines under `tests/golden/`. All of
//! them go through this crate so the repository has exactly one JSON
//! implementation and zero external dependencies.
//!
//! Objects preserve insertion order, which keeps emitted files stable and
//! diffable — important for committed golden baselines.
//!
//! # Examples
//!
//! ```
//! use plasticine_json::Json;
//!
//! let v = Json::obj([
//!     ("cycles", Json::from(1234u64)),
//!     ("name", Json::from("GEMM")),
//! ]);
//! let text = v.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(1234));
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod hash;

use std::fmt;

/// A JSON value. Numbers keep integer/float distinction so `u64` counters
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number (covers every counter in the workspace).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Float(v as f64))
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Encodes a `u64` as a fixed-width lowercase hex string. `From<u64>`
    /// silently degrades values above `i64::MAX` to `Float`; hex strings
    /// are the exact-round-trip encoding for ids, addresses, and hashes.
    pub fn hex(v: u64) -> Json {
        Json::Str(format!("{v:016x}"))
    }

    /// Decodes a [`Json::hex`]-encoded `u64`.
    pub fn as_hex(&self) -> Option<u64> {
        self.as_str().and_then(|s| u64::from_str_radix(s, 16).ok())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out.push('\n');
        out
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem and its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep floats recognizable as floats on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_value(v: &Json, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(n) => write_f64(*n, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any writer in
                            // this workspace; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn integers_roundtrip_exactly() {
        let v = Json::from(9_007_199_254_740_993u64); // 2^53 + 1
        let back = Json::parse(&v.compact()).unwrap();
        assert_eq!(back.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.compact(), "{\"z\":1,\"a\":2}");
        let back = Json::parse(&v.pretty()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj([
            ("list", Json::from(vec![1u64, 2, 3])),
            (
                "inner",
                Json::obj([
                    ("s", Json::from("a \"quoted\" \n value")),
                    ("f", Json::from(0.5)),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.compact(), v.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        let e = Json::parse("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"));
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"k\" : [ 1 , \"a\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap()[1].as_str(),
            Some("aA\t")
        );
    }

    #[test]
    fn floats_render_as_floats() {
        assert_eq!(Json::Float(2.0).compact(), "2.0");
        assert_eq!(Json::parse("2.0").unwrap(), Json::Float(2.0));
        assert_eq!(Json::Float(f64::NAN).compact(), "null");
    }
}
