//! Whole-stack property test: randomly generated tiled programs must
//! compile onto the paper-final chip and simulate with functional results
//! identical to a host evaluation of the same arithmetic.

use plasticine::arch::PlasticineParams;
use plasticine::compiler::{compile, Bitstream};
use plasticine::ppir::*;
use plasticine::sim::{simulate, SimOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomPipe {
    tiles: usize,
    tile: usize,
    tile_par: usize,
    lane_par: usize,
    ops: Vec<(BinOp, i32)>, // op with a constant rhs, applied in sequence
    schedule: Schedule,
    reduce: bool,
}

fn pipe_strategy() -> impl Strategy<Value = RandomPipe> {
    let op = prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::Xor,
    ]);
    (
        1usize..5,
        prop::sample::select(vec![32usize, 64, 128]),
        1usize..3,
        prop::sample::select(vec![4usize, 8, 16]),
        prop::collection::vec((op, -9i32..9), 1..12),
        prop::sample::select(vec![Schedule::Sequential, Schedule::Pipelined]),
        any::<bool>(),
    )
        .prop_map(
            |(tiles, tile, tile_par, lane_par, ops, schedule, reduce)| RandomPipe {
                tiles,
                tile,
                tile_par,
                lane_par,
                ops,
                schedule,
                reduce,
            },
        )
}

/// Builds: for each tile, load → elementwise op chain → (store | fold).
fn build(p: &RandomPipe) -> (Program, DramId, Option<DramId>, Option<RegId>) {
    let n = p.tiles * p.tile;
    let mut b = ProgramBuilder::new("random_pipe");
    let d_in = b.dram("in", DType::I32, n);
    let s_in = b.sram("t_in", DType::I32, &[p.tile]);
    let (d_out, s_out, acc) = if p.reduce {
        (None, None, Some(b.reg("acc", DType::I32)))
    } else {
        (
            Some(b.dram("out", DType::I32, n)),
            Some(b.sram("t_out", DType::I32, &[p.tile])),
            None,
        )
    };

    let t = b.counter(0, p.tiles as i64, 1, p.tile_par);
    let mut base = Func::new("base");
    let ti = base.index(t.index);
    let tl = base.konst(Elem::I32(p.tile as i32));
    let off = base.binary(BinOp::Mul, ti, tl);
    base.set_outputs(vec![off]);
    let base = b.func(base);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: base,
            rows: 1,
            cols: p.tile,
            dram_row_stride: p.tile,
            sram: s_in,
        }),
    );

    let i = b.counter(0, p.tile as i64, 1, p.lane_par);
    let mut body = Func::new("chain");
    let iv = body.index(i.index);
    let mut v = body.load(s_in, vec![iv]);
    for &(op, c) in &p.ops {
        let k = body.konst(Elem::I32(c));
        v = body.binary(op, v, k);
    }
    body.set_outputs(vec![v]);
    let body = b.func(body);

    let mut children = vec![ld];
    if p.reduce {
        let pipe = b.inner(
            "fold",
            vec![i],
            InnerOp::Fold(FoldPipe {
                map: body,
                combine: vec![BinOp::Add],
                init: vec![FoldInit::Resume],
                out_regs: vec![Some(acc.unwrap())],
                writes: vec![],
            }),
        );
        children.push(pipe);
    } else {
        let mut wa = Func::new("wa");
        let iv = wa.index(i.index);
        wa.set_outputs(vec![iv]);
        let wa = b.func(wa);
        let pipe = b.inner(
            "map",
            vec![i],
            InnerOp::Map(MapPipe {
                body,
                writes: vec![PipeWrite {
                    sram: s_out.unwrap(),
                    addr: wa,
                    value_slot: 0,
                    mode: WriteMode::Overwrite,
                }],
            }),
        );
        children.push(pipe);
        let st = b.inner(
            "st",
            vec![],
            InnerOp::StoreTile(TileTransfer {
                dram: d_out.unwrap(),
                dram_base: base,
                rows: 1,
                cols: p.tile,
                dram_row_stride: p.tile,
                sram: s_out.unwrap(),
            }),
        );
        children.push(st);
    }
    let tiles = b.outer("tiles", p.schedule, vec![t], children);
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles]);
    (b.finish(root).unwrap(), d_in, d_out, acc)
}

fn host_eval(p: &RandomPipe, x: i32) -> i32 {
    let mut v = x;
    for &(op, c) in &p.ops {
        v = match op {
            BinOp::Add => v.wrapping_add(c),
            BinOp::Sub => v.wrapping_sub(c),
            BinOp::Mul => v.wrapping_mul(c),
            BinOp::Min => v.min(c),
            BinOp::Max => v.max(c),
            BinOp::Xor => v ^ c,
            _ => unreachable!(),
        };
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_compile_simulate_and_match_host(p in pipe_strategy()) {
        let (program, d_in, d_out, acc) = build(&p);
        let params = PlasticineParams::paper_final();
        let out = compile(&program, &params)
            .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?;

        let n = p.tiles * p.tile;
        let data: Vec<Elem> = (0..n).map(|i| Elem::I32((i as i32 * 31) % 257 - 128)).collect();
        let mut m = Machine::new(&program);
        m.write_dram(d_in, &data);
        let r = simulate(&program, &out, &mut m, &SimOptions::default())
            .map_err(|e| TestCaseError::fail(format!("simulate: {e}")))?;
        prop_assert!(r.cycles > 0);

        if let Some(acc) = acc {
            let want = data
                .iter()
                .fold(0i32, |s, e| s.wrapping_add(host_eval(&p, e.as_i32().unwrap())));
            prop_assert_eq!(m.reg(acc), Elem::I32(want));
        }
        if let Some(d_out) = d_out {
            for (i, e) in data.iter().enumerate() {
                let want = host_eval(&p, e.as_i32().unwrap());
                prop_assert_eq!(
                    m.dram_data(d_out)[i],
                    Elem::I32(want),
                    "element {}", i
                );
            }
        }
        // Cross-check activity: one ALU op per chain element per input.
        prop_assert!(r.activity.fu_ops >= (n * p.ops.len()) as u64);
    }

    #[test]
    fn sequential_never_beats_pipelined(mut p in pipe_strategy()) {
        p.tiles = 4;
        let run = |sched: Schedule, p: &RandomPipe| {
            let mut p = p.clone();
            p.schedule = sched;
            let (program, d_in, _, _) = build(&p);
            let params = PlasticineParams::paper_final();
            let out = compile(&program, &params).unwrap();
            let n = p.tiles * p.tile;
            let data: Vec<Elem> = (0..n).map(|i| Elem::I32(i as i32)).collect();
            let mut m = Machine::new(&program);
            m.write_dram(d_in, &data);
            simulate(&program, &out, &mut m, &SimOptions::default())
                .unwrap()
                .cycles
        };
        let seq = run(Schedule::Sequential, &p);
        let pipe = run(Schedule::Pipelined, &p);
        // Small slack: pipelining may pay a few cycles of credit handshakes
        // on degenerate single-tile programs.
        prop_assert!(pipe <= seq + 8, "pipelined {} vs sequential {}", pipe, seq);
    }

    #[test]
    fn compilation_is_deterministic(p in pipe_strategy()) {
        // Compile-once artifacts are only sound if compilation is a pure
        // function of (program, params): two in-process compiles (whose
        // internal `HashMap`s get different random hasher states) must
        // serialize to the same bytes and the same content hash.
        let (program, _, _, _) = build(&p);
        let params = PlasticineParams::paper_final();
        let a = compile(&program, &params)
            .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?;
        let b = compile(&program, &params)
            .map_err(|e| TestCaseError::fail(format!("compile: {e}")))?;
        let ba = Bitstream::new(&program, a, vec![]);
        let bb = Bitstream::new(&program, b, vec![]);
        prop_assert_eq!(ba.content_hash, bb.content_hash);
        prop_assert_eq!(ba.encode(), bb.encode());
        // The program hash is stable too — it keys the compile cache.
        prop_assert_eq!(program.stable_hash(), program.clone().stable_hash());
    }
}
