//! Cross-crate integration tests: the full pattern-program → compile →
//! simulate → verify pipeline, plus structural invariants of compiled
//! configurations across the whole benchmark suite.

use plasticine::arch::{PlasticineParams, SiteId, UnitCfg};
use plasticine::compiler::compile;
use plasticine::ppir::*;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{all, Scale};
use std::collections::HashSet;

#[test]
fn physical_sites_are_never_double_booked() {
    let params = PlasticineParams::paper_final();
    for bench in all(Scale::tiny()) {
        let out = compile(&bench.program, &params).unwrap();
        let mut pcu_sites: HashSet<SiteId> = HashSet::new();
        let mut pmu_sites: HashSet<SiteId> = HashSet::new();
        let mut ags = HashSet::new();
        for u in &out.config.units {
            match u {
                UnitCfg::Compute(c) => {
                    for s in &c.sites {
                        assert!(
                            pcu_sites.insert(*s),
                            "{}: PCU site {:?} double-booked",
                            bench.name,
                            s
                        );
                    }
                }
                UnitCfg::Memory(m) => {
                    for s in &m.sites {
                        assert!(
                            pmu_sites.insert(*s),
                            "{}: PMU site {:?} double-booked",
                            bench.name,
                            s
                        );
                    }
                }
                UnitCfg::Ag(a) => {
                    for g in &a.ags {
                        assert!(ags.insert(*g), "{}: AG double-booked", bench.name);
                    }
                }
                UnitCfg::Outer(_) => {}
            }
        }
        // PCU sites only ever host compute; PMU sites only memory.
        assert!(pcu_sites.is_disjoint(&pmu_sites));
        assert_eq!(pcu_sites.len(), out.config.usage.pcus);
        assert_eq!(pmu_sites.len(), out.config.usage.pmus);
    }
}

#[test]
fn links_reference_existing_units_and_have_latency() {
    let params = PlasticineParams::paper_final();
    for bench in all(Scale::tiny()) {
        let out = compile(&bench.program, &params).unwrap();
        let n = out.config.units.len() as u32;
        for l in &out.config.links {
            assert!(l.src.0 < n, "{}: dangling link src", bench.name);
            assert!(l.dst.0 < n, "{}: dangling link dst", bench.name);
            assert!(l.hops >= 2, "{}: link without pipeline latency", bench.name);
            assert!(!l.path.is_empty());
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let params = PlasticineParams::paper_final();
    let bench = plasticine::workloads::gemm::gemm(Scale::tiny());
    let out = compile(&bench.program, &params).unwrap();
    let mut cycles = Vec::new();
    for _ in 0..2 {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let r = simulate(&bench.program, &out, &mut m, &SimOptions::default()).unwrap();
        cycles.push((r.cycles, r.activity.fu_ops, r.dram.reads));
    }
    assert_eq!(cycles[0], cycles[1], "simulation must be deterministic");
}

#[test]
fn schedule_override_preserves_functional_results() {
    // Forcing every outer controller sequential must not change results —
    // schedules are performance-only by the programming-model contract.
    let bench = plasticine::workloads::dense::black_scholes(Scale::tiny());
    let seq = bench.program.with_schedules(|_| Schedule::Sequential);
    let params = PlasticineParams::paper_final();
    let out = compile(&seq, &params).unwrap();
    let mut m = Machine::new(&seq);
    bench.load(&mut m);
    simulate(&seq, &out, &mut m, &SimOptions::default()).unwrap();
    bench.verify(&m).unwrap();
}

#[test]
fn trace_totals_match_interpreter_stats() {
    let bench = plasticine::workloads::dense::tpchq6(Scale::tiny());
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let mut rec = TraceRecorder::new();
    m.run_traced(&mut rec).unwrap();
    let trace = rec.into_trace();
    // Every compute body invocation appears in the trace's trip totals
    // (transfers add their element counts on top).
    assert!(trace.total_trips() >= m.stats.body_invocations);
    assert!(trace.leaf_count() > 0);
}

#[test]
fn interpreter_and_simulator_agree_on_a_custom_program() {
    // A program not in the benchmark suite: elementwise max of two vectors
    // with a final reduction, pipelined over tiles.
    let n = 1024usize;
    let tile = 256usize;
    let mut b = ProgramBuilder::new("maxsum");
    let d_a = b.dram("a", DType::I32, n);
    let d_b = b.dram("b", DType::I32, n);
    let s_a = b.sram("ta", DType::I32, &[tile]);
    let s_b = b.sram("tb", DType::I32, &[tile]);
    let acc = b.reg("acc", DType::I32);

    let t = b.counter(0, (n / tile) as i64, 1, 2);
    let mut base = Func::new("base");
    let ti = base.index(t.index);
    let tl = base.konst(Elem::I32(tile as i32));
    let off = base.binary(BinOp::Mul, ti, tl);
    base.set_outputs(vec![off]);
    let base = b.func(base);
    let ld_a = b.inner(
        "ld_a",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_a,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_a,
        }),
    );
    let ld_b = b.inner(
        "ld_b",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_b,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_b,
        }),
    );
    let i = b.counter(0, tile as i64, 1, 16);
    let mut map = Func::new("max");
    let iv = map.index(i.index);
    let av = map.load(s_a, vec![iv]);
    let bv = map.load(s_b, vec![iv]);
    let mx = map.binary(BinOp::Max, av, bv);
    map.set_outputs(vec![mx]);
    let map = b.func(map);
    let fold = b.inner(
        "fold",
        vec![i],
        InnerOp::Fold(FoldPipe {
            map,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Resume],
            out_regs: vec![Some(acc)],
            writes: vec![],
        }),
    );
    let tiles = b.outer(
        "tiles",
        Schedule::Pipelined,
        vec![t],
        vec![ld_a, ld_b, fold],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles]);
    let p = b.finish(root).unwrap();

    let a: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((i as i32 * 7) % 101 - 50))
        .collect();
    let bv: Vec<Elem> = (0..n)
        .map(|i| Elem::I32((i as i32 * 13) % 97 - 48))
        .collect();
    let want: i32 = (0..n)
        .map(|i| a[i].as_i32().unwrap().max(bv[i].as_i32().unwrap()))
        .sum();

    let params = PlasticineParams::paper_final();
    let out = compile(&p, &params).unwrap();
    let mut m = Machine::new(&p);
    m.write_dram(d_a, &a);
    m.write_dram(d_b, &bv);
    let r = simulate(&p, &out, &mut m, &SimOptions::default()).unwrap();
    assert_eq!(m.reg(acc), Elem::I32(want));
    assert!(r.cycles > 0);
    assert_eq!(r.activity.fu_ops, n as u64 + (n / 16) as u64 * 15);
}

#[test]
fn utilization_never_exceeds_chip_capacity() {
    let params = PlasticineParams::paper_final();
    for bench in all(Scale::small()) {
        let out = compile(&bench.program, &params).unwrap();
        assert!(out.config.usage.pcus <= params.num_pcus(), "{}", bench.name);
        assert!(out.config.usage.pmus <= params.num_pmus(), "{}", bench.name);
        assert!(out.config.usage.ags <= params.ags, "{}", bench.name);
    }
}

#[test]
fn coalescing_never_increases_dram_traffic() {
    let params = PlasticineParams::paper_final();
    let bench = plasticine::workloads::sparse::pagerank(Scale::tiny());
    let out = compile(&bench.program, &params).unwrap();
    let run = |coalescing: bool| {
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let opts = SimOptions {
            coalescing,
            ..SimOptions::default()
        };
        simulate(&bench.program, &out, &mut m, &opts).unwrap()
    };
    let on = run(true);
    let off = run(false);
    assert!(on.dram.reads + on.dram.writes <= off.dram.reads + off.dram.writes);
}

#[test]
fn table6_shape_stays_in_the_papers_ballpark() {
    use plasticine::compiler::{build_virtual, Analysis};
    use plasticine::models::dse::table6;
    use plasticine::models::AreaModel;
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .filter(|b| b.name != "CNN")
        .map(|b| {
            let an = Analysis::run(&b.program);
            (b.name, build_virtual(&b.program, &an))
        })
        .collect();
    let rows = table6(&apps, &AreaModel::new());
    let gm = rows.last().expect("geomean row");
    // Paper: a = 2.77, cumulative = 11.5×. Guard the shape, not the digit.
    assert!(
        gm.a > 1.8 && gm.a < 4.5,
        "reconfigurability tax drifted: {}",
        gm.a
    );
    let cum = gm.cumulative()[4];
    assert!(cum > 6.0 && cum < 20.0, "total overhead drifted: {cum}");
}

#[test]
fn fig7_invalid_points_match_the_reduction_constraint() {
    use plasticine::compiler::{build_virtual, Analysis};
    use plasticine::models::dse::{sweep, PcuParamKind, SweepSpec};
    use plasticine::models::AreaModel;
    let apps: Vec<_> = [
        plasticine::workloads::dense::inner_product(Scale::tiny()),
        plasticine::workloads::dense::outer_product(Scale::tiny()),
    ]
    .into_iter()
    .map(|b| {
        let an = Analysis::run(&b.program);
        (b.name, build_virtual(&b.program, &an))
    })
    .collect();
    let spec = SweepSpec {
        target: PcuParamKind::Stages,
        values: (4..=8).collect(),
        fixed: vec![],
    };
    let rows = sweep(&apps, &spec, &AreaModel::new());
    let ip = rows.iter().find(|r| r.app == "InnerProduct").unwrap();
    let op = rows.iter().find(|r| r.app == "OuterProduct").unwrap();
    // InnerProduct folds over 16 lanes: 4 stages cannot hold the tree (×);
    // OuterProduct is a pure map: 4 stages are fine.
    assert!(
        ip.points[0].overhead.is_none(),
        "IP stages=4 must be invalid"
    );
    assert!(ip.points[2].overhead.is_some(), "IP stages=6 must be valid");
    assert!(op.points[0].overhead.is_some(), "OP stages=4 must be valid");
}
