//! Integration tests for the `plasticine-run batch` supervisor and the
//! checkpoint/usage surface of the CLI, driven through the real binary.
//!
//! The headline scenario is the one the feature exists for: a batch where
//! one job panics and one hangs must still complete every other job,
//! journal the failures with their exit codes, and — re-invoked with the
//! same journal — skip the completed jobs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_plasticine-run")
}

/// Fresh scratch directory per test (no tempdir crate; the target dir is
/// already ours to write under).
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], envs: &[(&str, &str)], cwd: &Path) -> Output {
    let mut c = Command::new(bin());
    c.args(args).current_dir(cwd);
    for (k, v) in envs {
        c.env(k, v);
    }
    c.output().expect("spawning plasticine-run")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn bad_arguments_exit_usage_with_a_message() {
    let dir = scratch("usage");
    // Satellite contract: every malformed value is exit 2 (Usage) with a
    // message naming the flag, never a panic or a silent clamp.
    for (args, needle) in [
        (vec!["batch", "all", "--jobs", "0"], "--jobs"),
        (vec!["batch", "all", "--jobs", "-3"], "--jobs"),
        (
            vec!["batch", "all", "--checkpoint-every", "0"],
            "--checkpoint-every",
        ),
        (
            vec!["batch", "all", "--checkpoint-every", "-5"],
            "--checkpoint-every",
        ),
        (
            vec![
                "batch",
                "all",
                "--checkpoint-every",
                "99999999999999999999999999",
            ],
            "--checkpoint-every",
        ),
        (
            vec!["run", "InnerProduct", "--checkpoint-every", "0"],
            "--checkpoint-every",
        ),
        (vec!["batch", "all", "--timeout", "0"], "--timeout"),
        (vec!["batch", "all", "--retries", "x"], "--retries"),
        (vec!["run", "InnerProduct", "--threads", "0"], "--threads"),
        (vec!["run", "InnerProduct", "--threads", "-2"], "--threads"),
        (
            vec!["run", "InnerProduct", "--threads", "99999999999999999999"],
            "--threads",
        ),
        (
            vec!["run", "InnerProduct", "--threads", "four"],
            "--threads",
        ),
        (vec!["batch", "all", "--threads", "0"], "--threads"),
        (
            // `compile` has no simulation, so --threads is unknown there.
            vec!["compile", "InnerProduct", "--threads", "2"],
            "--threads",
        ),
        (
            vec!["run", "InnerProduct", "--max-cycles", "0"],
            "--max-cycles",
        ),
        (
            // Checkpointing runs untraced, so combining them is refused.
            vec![
                "run",
                "InnerProduct",
                "--trace",
                "t.json",
                "--checkpoint-every",
                "100",
            ],
            "--trace",
        ),
        (vec!["run", "all", "--resume", "x.ckpt.json"], "--resume"),
    ] {
        let o = run(&args, &[], &dir);
        assert_eq!(
            o.status.code(),
            Some(2),
            "`{}` should exit 2 (usage), got {:?}\nstderr: {}",
            args.join(" "),
            o.status.code(),
            stderr(&o)
        );
        assert!(
            stderr(&o).contains(needle),
            "`{}` stderr should mention {needle}: {}",
            args.join(" "),
            stderr(&o)
        );
    }
}

#[test]
fn supervisor_contains_panics_and_timeouts_and_journals_them() {
    let dir = scratch("supervisor");
    let benches = ["InnerProduct", "GEMM", "BFS", "TPCHQ6"];
    let mut args = vec!["batch"];
    args.extend(benches);
    args.extend(["--jobs", "2", "--timeout", "5", "--journal", "j.json"]);
    let o = run(
        &args,
        &[
            ("PLASTICINE_TEST_PANIC", "GEMM"),
            ("PLASTICINE_TEST_HANG", "BFS"),
        ],
        &dir,
    );
    // Both failures are runtime-class; the batch itself must not panic or
    // hang, and the healthy jobs must complete and verify.
    assert_eq!(o.status.code(), Some(1), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    for good in ["InnerProduct", "TPCHQ6"] {
        assert!(
            out.contains(&format!("{good} ")) && out.contains("[verified]"),
            "{good} should have completed:\n{out}"
        );
    }
    assert!(
        out.contains("2 ok, 2 failed"),
        "summary should count 2 ok / 2 failed:\n{out}"
    );
    let err = stderr(&o);
    assert!(
        err.contains("panicked") && err.contains("timed out"),
        "failure report should show both failure classes:\n{err}"
    );

    let journal = std::fs::read_to_string(dir.join("j.json")).unwrap();
    assert!(journal.contains("\"status\": \"done\""), "{journal}");
    assert!(
        journal.contains("worker panicked") && journal.contains("timed out"),
        "journal should record both failure messages:\n{journal}"
    );

    // Re-invoking with the same journal and no failure injection: the two
    // completed jobs are skipped, the two failed ones re-run and pass.
    let o = run(&args, &[], &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(
        out.contains("InnerProduct: skipped (journal: already done)"),
        "completed jobs should be skipped on re-run:\n{out}"
    );
    assert!(
        out.contains("2 ok, 0 failed, 2 skipped"),
        "re-run summary:\n{out}"
    );

    // Third invocation: everything is in the journal now.
    let o = run(&args, &[], &dir);
    assert!(stdout(&o).contains("0 ok, 0 failed, 4 skipped"));
}

#[test]
fn fault_exhaustion_is_retried_with_bounded_attempts() {
    let dir = scratch("retries");
    // drop=0.95 with a 1-retry DRAM budget exhausts deterministically
    // (seeded RNG); the supervisor's bounded retry re-runs the job the
    // requested number of times and then reports exit 5.
    let o = run(
        &[
            "batch",
            "InnerProduct",
            "--faults",
            "drop=0.95,retries=1,seed=7",
            "--retries",
            "2",
            "--journal",
            "j.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(5), "stderr: {}", stderr(&o));
    let journal = std::fs::read_to_string(dir.join("j.json")).unwrap();
    assert!(
        journal.contains("\"attempts\": 3") && journal.contains("\"code\": 5"),
        "journal should show 3 attempts ending in exit 5:\n{journal}"
    );
    let err = stderr(&o);
    assert!(
        err.contains("retrying"),
        "supervisor should announce retries:\n{err}"
    );
}

#[test]
fn fail_fast_stops_scheduling_after_the_first_failure() {
    let dir = scratch("failfast");
    let o = run(
        &[
            "batch",
            "GEMM",
            "InnerProduct",
            "TPCHQ6",
            "BFS",
            "--jobs",
            "1",
            "--fail-fast",
        ],
        &[("PLASTICINE_TEST_PANIC", "GEMM")],
        &dir,
    );
    assert_eq!(o.status.code(), Some(1), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    // With one worker, the panicking first job must prevent the rest from
    // being claimed at all.
    assert!(
        out.contains("0 ok, 1 failed, 0 skipped, 3 not run"),
        "fail-fast summary:\n{out}"
    );
}

#[test]
fn cli_checkpoint_resume_stats_are_bit_identical() {
    let dir = scratch("cli-roundtrip");
    let o = run(
        &["run", "InnerProduct", "--stats-json", "base.json"],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let o = run(
        &[
            "run",
            "InnerProduct",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            ".",
            "--stats-json",
            "ckpt.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(
        stdout(&o).contains("checkpoint at cycle"),
        "a cadence checkpoint should be announced:\n{}",
        stdout(&o)
    );
    let o = run(
        &[
            "run",
            "InnerProduct",
            "--resume",
            "innerproduct.ckpt.json",
            "--stats-json",
            "resumed.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("resuming from cycle"));
    let base = std::fs::read_to_string(dir.join("base.json")).unwrap();
    assert_eq!(
        base,
        std::fs::read_to_string(dir.join("ckpt.json")).unwrap(),
        "checkpoint emission must not perturb stats"
    );
    assert_eq!(
        base,
        std::fs::read_to_string(dir.join("resumed.json")).unwrap(),
        "resumed stats must be byte-identical"
    );
}

/// `--threads N` through the real binary: the parallel kernel's stats are
/// byte-identical to serial, for a plain run and for a batch where each
/// job runs multi-threaded.
#[test]
fn threads_flag_is_byte_identical_through_the_cli() {
    let dir = scratch("threads");
    let o = run(
        &["run", "InnerProduct", "--stats-json", "base.json"],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let o = run(
        &[
            "run",
            "InnerProduct",
            "--threads",
            "4",
            "--stats-json",
            "t4.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let base = std::fs::read_to_string(dir.join("base.json")).unwrap();
    assert_eq!(
        base,
        std::fs::read_to_string(dir.join("t4.json")).unwrap(),
        "run --threads 4 must not perturb stats"
    );
    let o = run(
        &[
            "batch",
            "InnerProduct",
            "--jobs",
            "1",
            "--threads",
            "4",
            "--stats-json",
            "batch.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert_eq!(
        base,
        std::fs::read_to_string(dir.join("batch-innerproduct.json")).unwrap(),
        "batch --threads 4 must match the serial single run"
    );
}

#[test]
fn budget_failure_auto_checkpoints_and_resumes_with_a_bigger_budget() {
    let dir = scratch("budget");
    let o = run(
        &[
            "run",
            "GEMM",
            "--max-cycles",
            "500",
            "--checkpoint-dir",
            ".",
        ],
        &[],
        &dir,
    );
    assert_eq!(
        o.status.code(),
        Some(6),
        "tiny budget should exit 6: {}",
        stderr(&o)
    );
    assert!(
        dir.join("gemm.ckpt.json").exists(),
        "budget failure should leave an auto-checkpoint"
    );
    let o = run(
        &[
            "run",
            "GEMM",
            "--resume",
            "gemm.ckpt.json",
            "--stats-json",
            "resumed.json",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let o = run(&["run", "GEMM", "--stats-json", "base.json"], &[], &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert_eq!(
        std::fs::read_to_string(dir.join("base.json")).unwrap(),
        std::fs::read_to_string(dir.join("resumed.json")).unwrap(),
        "resume across a budget failure must match the uninterrupted run"
    );
}

/// Journal writes are atomic (temp file + rename): a truncated journal —
/// the artifact of a pre-atomic-write crash — is a typed runtime error
/// with a message naming the journal, never a panic; and the temp file
/// never survives a flush.
#[test]
fn truncated_journal_is_a_typed_error_and_writes_are_atomic() {
    let dir = scratch("journal-atomic");
    // A journal cut off mid-write, as a kill during a plain
    // `fs::write` could have left behind.
    std::fs::write(dir.join("j.json"), "{\"version\": 1, \"jobs\": [\n").unwrap();
    let o = run(&["batch", "InnerProduct", "--journal", "j.json"], &[], &dir);
    assert_eq!(
        o.status.code(),
        Some(1),
        "corrupt journal should exit 1 (runtime), got {:?}\nstderr: {}",
        o.status.code(),
        stderr(&o)
    );
    assert!(
        stderr(&o).contains("journal"),
        "stderr should name the journal:\n{}",
        stderr(&o)
    );

    // A stale temp file from an interrupted flush is harmless: the next
    // batch overwrites and renames it away.
    std::fs::remove_file(dir.join("j.json")).unwrap();
    std::fs::write(dir.join("j.json.tmp"), "garbage from a dead writer").unwrap();
    let o = run(&["batch", "InnerProduct", "--journal", "j.json"], &[], &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let journal = std::fs::read_to_string(dir.join("j.json")).unwrap();
    assert!(journal.contains("\"status\": \"done\""), "{journal}");
    assert!(
        !dir.join("j.json.tmp").exists(),
        "the temp file must be renamed over the journal, not left behind"
    );
}

/// `--checkpoint-dir` ergonomics: a missing (even nested) directory is
/// created up front; an unusable path is a usage error (exit 2) before
/// any simulation starts, not a mid-run surprise.
#[test]
fn checkpoint_dir_is_created_and_validated_up_front() {
    let dir = scratch("ckpt-dir");
    let o = run(
        &[
            "run",
            "InnerProduct",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            "nested/ckpt/dir",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(
        dir.join("nested/ckpt/dir").is_dir(),
        "a missing nested checkpoint dir should be created"
    );

    // A path that runs through an existing *file* cannot become a
    // directory: typed usage error naming the flag, before any work.
    std::fs::write(dir.join("occupied"), "a file").unwrap();
    for cmd in [
        vec![
            "run",
            "InnerProduct",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            "occupied/sub",
        ],
        vec![
            "batch",
            "InnerProduct",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            "occupied/sub",
        ],
    ] {
        let o = run(&cmd, &[], &dir);
        assert_eq!(
            o.status.code(),
            Some(2),
            "`{}` should exit 2 (usage): {}",
            cmd.join(" "),
            stderr(&o)
        );
        assert!(
            stderr(&o).contains("--checkpoint-dir"),
            "stderr should name the flag:\n{}",
            stderr(&o)
        );
    }
}

#[test]
fn resuming_against_the_wrong_bench_is_a_usage_error() {
    let dir = scratch("wrong-bench");
    let o = run(
        &[
            "run",
            "InnerProduct",
            "--checkpoint-every",
            "300",
            "--checkpoint-dir",
            ".",
        ],
        &[],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let o = run(
        &["run", "GEMM", "--resume", "innerproduct.ckpt.json"],
        &[],
        &dir,
    );
    assert_eq!(
        o.status.code(),
        Some(2),
        "wrong-program resume should exit 2 (usage): {}",
        stderr(&o)
    );
    assert!(
        stderr(&o).contains("does not match"),
        "stderr should explain the mismatch: {}",
        stderr(&o)
    );
}
