//! Differential harness for the multi-threaded event kernel.
//!
//! `SimOptions::threads` must be *invisible* in every result byte: the
//! parallel fast-forward engine shards DRAM channels (and their coalescing
//! units) across a worker pool, and its canonical merge order makes the
//! outcome bit-for-bit identical to the serial kernel at any thread count.
//! This suite pins that guarantee along every axis the kernel supports:
//!
//! - all 13 Table 4 workloads × both step modes × threads ∈ {1, 2, 4, 8}
//!   produce byte-identical `stats_json` snapshots;
//! - fault injection (hard faults, an offline DRAM channel exercising the
//!   remap-aware shard plan, lane/SRAM flips, and response drops) preserves
//!   identity, with and without the parallel engine engaged;
//! - degenerate DRAM shapes (a single channel — one shard, engine disabled;
//!   two channels — fewer shards than workers) stay identical;
//! - a pinned-seed proptest over random (workload, fault-spec, thread
//!   count, checkpoint cadence) tuples asserts serial/parallel identity and
//!   resume/straight-through identity, *crossing* thread counts between the
//!   checkpointing and resuming runs — snapshots are thread-count
//!   independent by construction.

use plasticine::arch::{FaultMap, FaultSpec, PlasticineParams, Topology};
use plasticine::compiler::{compile, compile_degraded, CompileOptions, CompileOutput};
use plasticine::dram::DramConfig;
use plasticine::ppir::{Machine, Program};
use plasticine::sim::{
    simulate, simulate_checkpointed, Checkpoint, CheckpointPolicy, SimOptions, StepMode,
};
use plasticine::workloads::{all, Bench, Scale};
use proptest::prelude::*;
use std::sync::OnceLock;

fn compiled() -> &'static Vec<(Bench, CompileOutput)> {
    static COMPILED: OnceLock<Vec<(Bench, CompileOutput)>> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let params = PlasticineParams::paper_final();
        all(Scale(1))
            .into_iter()
            .map(|b| {
                let out = compile(&b.program, &params)
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
                (b, out)
            })
            .collect()
    })
}

/// One full run: load, simulate, verify functional outputs, snapshot stats.
fn snapshot(bench: &Bench, prog: &Program, out: &CompileOutput, opts: &SimOptions) -> String {
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let r = simulate(prog, out, &mut m, opts).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    r.stats_json().pretty()
}

/// Every workload, both step modes: threads 2/4/8 reproduce the
/// single-thread snapshot byte for byte.
#[test]
fn all_workloads_byte_identical_at_every_thread_count() {
    for (bench, out) in compiled() {
        for step in [StepMode::Event, StepMode::Cycle] {
            let opts = |threads| SimOptions {
                step,
                threads,
                ..SimOptions::default()
            };
            let serial = snapshot(bench, &bench.program, out, &opts(1));
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    snapshot(bench, &bench.program, out, &opts(threads)),
                    serial,
                    "{} ({step:?}): threads={threads} diverged from serial",
                    bench.name
                );
            }
        }
    }
}

/// Runs a fault-injected sweep at a given spec: compile against the
/// degraded fabric, then compare serial vs parallel snapshots.
fn check_fault_spec(spec_text: &str) {
    let params = PlasticineParams::paper_final();
    let spec: FaultSpec = spec_text.parse().unwrap();
    let faults = FaultMap::sample(
        &Topology::new(&params),
        &spec,
        DramConfig::default().channels,
    );
    let copts = CompileOptions {
        faults: faults.clone(),
        ..CompileOptions::new()
    };
    for (bench, _) in compiled().iter().take(5) {
        let (out, prog, _) = compile_degraded(&bench.program, &params, &copts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let run = |threads: usize| {
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let sopts = SimOptions {
                faults: faults.clone(),
                threads,
                ..SimOptions::default()
            };
            let r = simulate(&prog, &out, &mut m, &sopts)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            r.stats_json().pretty()
        };
        let serial = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                run(threads),
                serial,
                "{} (spec {spec_text:?}): threads={threads} diverged",
                bench.name
            );
        }
    }
}

/// Fault injection with the parallel engine *engaged*: hard faults, one
/// offline DRAM channel (traffic spills across shards via the remap, which
/// the shard plan must absorb), and lane/SRAM transient flips — but no
/// response drops, so fast-forward spans stay eligible.
#[test]
fn fault_injection_with_engine_engaged_is_identical() {
    check_fault_spec("pcu=4,pmu=4,links=3,chan=1,lane=0.001,sram=0.001,seed=42");
}

/// The full pinned spec from the step-mode suite, drops included: response
/// drops gate the parallel engine off span-by-span, and the gate itself
/// must be deterministic and invisible in the stats.
#[test]
fn fault_injection_with_drops_is_identical() {
    check_fault_spec("pcu=6,pmu=6,links=5,lane=0.001,sram=0.001,drop=0.01,seed=42");
}

/// Degenerate DRAM shapes: one channel means one shard (the engine must
/// decline and stay serial), two channels mean fewer shards than the
/// 8-thread pool would like. Both must be invisible in the stats.
#[test]
fn degenerate_channel_counts_are_identical() {
    for channels in [1usize, 2] {
        let dram = DramConfig {
            channels,
            ..DramConfig::default()
        };
        for (bench, out) in compiled().iter().take(4) {
            let opts = |threads| SimOptions {
                dram: dram.clone(),
                threads,
                ..SimOptions::default()
            };
            let serial = snapshot(bench, &bench.program, out, &opts(1));
            for threads in [4usize, 8] {
                assert_eq!(
                    snapshot(bench, &bench.program, out, &opts(threads)),
                    serial,
                    "{} ({channels} channels): threads={threads} diverged",
                    bench.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for a random (workload, fault spec, thread count,
    /// checkpoint cadence) tuple, (a) the parallel straight-through run
    /// matches serial, and (b) checkpointing under one thread count and
    /// resuming under another reproduces the same bytes — checkpoints carry
    /// no trace of the thread count that wrote them.
    #[test]
    fn random_tuples_hold_identity(
        which in 0usize..13,
        step in prop::sample::select(vec![StepMode::Event, StepMode::Cycle]),
        threads in prop::sample::select(vec![2usize, 3, 4, 8]),
        frac in 1u64..10,
        fault in prop::sample::select(vec![
            None,
            Some("lane=0.001,sram=0.001,seed=7"),
            Some("pcu=3,links=2,chan=1,seed=11"),
            Some("drop=0.005,seed=5"),
        ]),
    ) {
        let params = PlasticineParams::paper_final();
        let (bench, cached_out) = &compiled()[which];
        // Resolve the program/bitstream/fault-map triple for this tuple.
        let (prog, out, faults);
        match fault {
            Some(spec_text) => {
                let spec: FaultSpec = spec_text.parse().unwrap();
                let map = FaultMap::sample(
                    &Topology::new(&params),
                    &spec,
                    DramConfig::default().channels,
                );
                let copts = CompileOptions { faults: map.clone(), ..CompileOptions::new() };
                let (o, p, _) = compile_degraded(&bench.program, &params, &copts)
                    .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name)))?;
                prog = p;
                out = o;
                faults = map;
            }
            None => {
                prog = bench.program.clone();
                out = cached_out.clone();
                faults = FaultMap::default();
            }
        }
        let opts = |threads: usize| SimOptions {
            step,
            threads,
            faults: faults.clone(),
            ..SimOptions::default()
        };

        // (a) Serial vs parallel, straight through.
        let serial = {
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let r = simulate(&prog, &out, &mut m, &opts(1))
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name)))?;
            (r.stats_json().pretty(), r.cycles)
        };
        let parallel = {
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let r = simulate(&prog, &out, &mut m, &opts(threads))
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name)))?;
            r.stats_json().pretty()
        };
        prop_assert_eq!(&parallel, &serial.0, "straight-through parallel diverged");

        // (b) Checkpoint under `threads`, resume under serial — and the
        // other way around. Both must land on the same bytes.
        let every = (serial.1 * frac / 10).max(1);
        let policy = CheckpointPolicy { every: Some(every), on_error: false };
        for (write_threads, read_threads) in [(threads, 1), (1, threads)] {
            let mut taken: Vec<Checkpoint> = Vec::new();
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let r = simulate_checkpointed(
                &prog, &out, &mut m, &opts(write_threads), policy, None,
                &mut |c| taken.push(c.clone()),
            )
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name)))?;
            prop_assert_eq!(
                r.stats_json().pretty(), serial.0.clone(),
                "checkpointing run (threads={}) diverged", write_threads
            );
            if let Some(mid) = taken.last() {
                let decoded = Checkpoint::decode(&mid.encode())
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                let mut m = Machine::new(&prog);
                bench.load(&mut m);
                let r = simulate_checkpointed(
                    &prog, &out, &mut m, &opts(read_threads),
                    CheckpointPolicy::default(), Some(&decoded), &mut |_| {},
                )
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", bench.name)))?;
                prop_assert_eq!(
                    r.stats_json().pretty(), serial.0.clone(),
                    "resume (write threads={}, read threads={}) diverged",
                    write_threads, read_threads
                );
            }
        }
    }
}
