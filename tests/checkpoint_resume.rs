//! Checkpoint/resume equivalence suite: for every Table 4 workload, in
//! both step modes, a run that checkpoints at a mid-run cycle boundary and
//! a fresh process that resumes from that checkpoint must produce final
//! stats **byte-identical** to an uninterrupted run — same cycle count,
//! same stall attribution, same DRAM statistics, same fault-RNG stream.
//!
//! The suite also pins the artifact format: encode→decode is a fixed
//! point, tampered payloads fail with [`CheckpointError::Corrupt`], and a
//! checkpoint taken from one program/bitstream/option-set refuses (with a
//! typed [`CheckpointError::Mismatch`]) to resume against another.

use plasticine::arch::PlasticineParams;
use plasticine::compiler::{compile, CompileOutput};
use plasticine::ppir::Machine;
use plasticine::sim::{
    simulate, simulate_checkpointed, Checkpoint, CheckpointError, CheckpointPolicy, SimError,
    SimOptions, StepMode,
};
use plasticine::workloads::{all, Bench, Scale};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Benches and their compile outputs, shared across every test in the
/// file (compilation is deterministic and read-only from here on).
fn compiled() -> &'static Vec<(Bench, CompileOutput)> {
    static COMPILED: OnceLock<Vec<(Bench, CompileOutput)>> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let params = PlasticineParams::paper_final();
        all(Scale(1))
            .into_iter()
            .map(|b| {
                let out = compile(&b.program, &params)
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", b.name));
                (b, out)
            })
            .collect()
    })
}

fn fresh_machine(bench: &Bench) -> Machine<'_> {
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    m
}

/// Uninterrupted baseline: final stats snapshot plus the cycle count.
fn baseline(bench: &Bench, out: &CompileOutput, opts: &SimOptions) -> (String, u64) {
    let mut m = fresh_machine(bench);
    let r = simulate(&bench.program, out, &mut m, opts)
        .unwrap_or_else(|e| panic!("{}: baseline: {e}", bench.name));
    bench
        .verify(&m)
        .unwrap_or_else(|e| panic!("{}: baseline verification: {e}", bench.name));
    (r.stats_json().pretty(), r.cycles)
}

/// Runs to completion while checkpointing every `every` cycles, returning
/// the final stats and every emitted checkpoint.
fn checkpointing_run(
    bench: &Bench,
    out: &CompileOutput,
    opts: &SimOptions,
    every: u64,
) -> (String, Vec<Checkpoint>) {
    let mut m = fresh_machine(bench);
    let mut taken = Vec::new();
    let policy = CheckpointPolicy {
        every: Some(every),
        on_error: false,
    };
    let r = simulate_checkpointed(&bench.program, out, &mut m, opts, policy, None, &mut |c| {
        taken.push(c.clone())
    })
    .unwrap_or_else(|e| panic!("{}: checkpointing run: {e}", bench.name));
    (r.stats_json().pretty(), taken)
}

/// Resumes from `ckpt` on a fresh machine and returns the final stats.
fn resumed_run(bench: &Bench, out: &CompileOutput, opts: &SimOptions, ckpt: &Checkpoint) -> String {
    let mut m = fresh_machine(bench);
    let r = simulate_checkpointed(
        &bench.program,
        out,
        &mut m,
        opts,
        CheckpointPolicy::default(),
        Some(ckpt),
        &mut |_| {},
    )
    .unwrap_or_else(|e| panic!("{}: resume: {e}", bench.name));
    bench
        .verify(&m)
        .unwrap_or_else(|e| panic!("{}: resumed verification: {e}", bench.name));
    r.stats_json().pretty()
}

/// The full equivalence check for one workload in one step mode.
fn check_bench(bench: &Bench, out: &CompileOutput, step: StepMode) {
    let opts = SimOptions {
        step,
        ..SimOptions::default()
    };
    let (want, cycles) = baseline(bench, out, &opts);
    let every = (cycles / 2).max(1);
    let (ckpt_stats, taken) = checkpointing_run(bench, out, &opts, every);
    assert_eq!(
        ckpt_stats, want,
        "{} ({step:?}): emitting checkpoints perturbed the run",
        bench.name
    );
    assert!(
        !taken.is_empty(),
        "{} ({step:?}): no checkpoint emitted with every={every} over {cycles} cycles",
        bench.name
    );
    for c in &taken {
        assert!(
            c.cycle > 0 && c.cycle < cycles,
            "{} ({step:?}): checkpoint at cycle {} outside mid-run (0, {cycles})",
            bench.name,
            c.cycle
        );
    }
    // Resume from the serialized form, not the in-memory one, so the whole
    // encode→decode→restore path is on the hot path of every workload.
    let mid = taken.last().unwrap();
    let decoded =
        Checkpoint::decode(&mid.encode()).unwrap_or_else(|e| panic!("{}: decode: {e}", bench.name));
    assert_eq!(
        decoded.encode(),
        mid.encode(),
        "{}: encode→decode is not a fixed point",
        bench.name
    );
    let got = resumed_run(bench, out, &opts, &decoded);
    assert_eq!(
        got, want,
        "{} ({step:?}): resume from cycle {} diverged from the uninterrupted run",
        bench.name, decoded.cycle
    );
}

#[test]
fn all_workloads_resume_bit_identical_event_mode() {
    for (bench, out) in compiled() {
        check_bench(bench, out, StepMode::Event);
    }
}

#[test]
fn all_workloads_resume_bit_identical_cycle_mode() {
    for (bench, out) in compiled() {
        check_bench(bench, out, StepMode::Cycle);
    }
}

#[test]
fn cross_mode_resume_matches() {
    // A checkpoint taken in event mode resumes under cycle mode (and vice
    // versa) with identical stats — the step mode is informational, not a
    // guard hash.
    for (bench, out) in compiled().iter().take(3) {
        let event = SimOptions {
            step: StepMode::Event,
            ..SimOptions::default()
        };
        let cycle = SimOptions {
            step: StepMode::Cycle,
            ..SimOptions::default()
        };
        let (want, cycles) = baseline(bench, out, &event);
        let (_, taken) = checkpointing_run(bench, out, &event, (cycles / 2).max(1));
        let mid = taken.last().unwrap();
        assert_eq!(
            resumed_run(bench, out, &cycle, mid),
            want,
            "{}: event-mode checkpoint resumed under cycle mode diverged",
            bench.name
        );
        let (_, taken) = checkpointing_run(bench, out, &cycle, (cycles / 2).max(1));
        assert_eq!(
            resumed_run(bench, out, &event, taken.last().unwrap()),
            want,
            "{}: cycle-mode checkpoint resumed under event mode diverged",
            bench.name
        );
    }
}

#[test]
fn mismatched_program_is_a_typed_error() {
    let benches = compiled();
    let (a, out_a) = &benches[0];
    let (b, out_b) = &benches[1];
    let opts = SimOptions::default();
    let (_, cycles) = baseline(a, out_a, &opts);
    let (_, taken) = checkpointing_run(a, out_a, &opts, (cycles / 2).max(1));
    let ckpt = taken.last().unwrap();

    // Wrong program + wrong bitstream.
    let mut m = fresh_machine(b);
    let err = simulate_checkpointed(
        &b.program,
        out_b,
        &mut m,
        &opts,
        CheckpointPolicy::default(),
        Some(ckpt),
        &mut |_| {},
    )
    .expect_err("resuming against the wrong program must fail");
    match &err {
        SimError::Checkpoint(CheckpointError::Mismatch(m)) => {
            assert!(
                m.contains(&a.name) || m.contains("program hash"),
                "mismatch message should name the checkpointed program: {m}"
            );
        }
        other => panic!("expected CheckpointError::Mismatch, got {other}"),
    }

    // Right program, different determinism-relevant options.
    let no_coalesce = SimOptions {
        coalescing: false,
        ..SimOptions::default()
    };
    let mut m = fresh_machine(a);
    let err = simulate_checkpointed(
        &a.program,
        out_a,
        &mut m,
        &no_coalesce,
        CheckpointPolicy::default(),
        Some(ckpt),
        &mut |_| {},
    )
    .expect_err("resuming under different sim options must fail");
    assert!(
        matches!(err, SimError::Checkpoint(CheckpointError::Mismatch(_))),
        "expected CheckpointError::Mismatch, got {err}"
    );

    // Bigger budgets are *not* a mismatch: that is the whole point of
    // auto-checkpointing on budget exhaustion.
    let bigger = SimOptions {
        max_cycles: SimOptions::default().max_cycles * 2,
        stall_limit: SimOptions::default().stall_limit * 2,
        ..SimOptions::default()
    };
    assert!(ckpt.matches(&a.program, &out_a.config, &bigger).is_ok());
}

#[test]
fn tampered_payload_is_corrupt() {
    let (bench, out) = &compiled()[0];
    let opts = SimOptions::default();
    let (_, cycles) = baseline(bench, out, &opts);
    let (_, taken) = checkpointing_run(bench, out, &opts, (cycles / 2).max(1));
    let text = taken.last().unwrap().encode();
    let tampered = text.replacen("\"cycle\"", "\"cycle \"", 1);
    assert_ne!(text, tampered, "tamper target not found");
    match Checkpoint::decode(&tampered) {
        Err(CheckpointError::Format(_)) | Err(CheckpointError::Corrupt { .. }) => {}
        other => panic!("expected Format or Corrupt, got {other:?}"),
    }
    // Flipping a digit inside a value keeps the JSON well-formed, so this
    // one must be caught by the content hash specifically.
    let c = taken.last().unwrap();
    let flipped = text.replacen(
        &format!("\"cycle\": {}", c.cycle),
        &format!("\"cycle\": {}", c.cycle + 1),
        1,
    );
    assert_ne!(text, flipped, "value tamper target not found");
    assert!(
        matches!(
            Checkpoint::decode(&flipped),
            Err(CheckpointError::Corrupt { .. })
        ),
        "a flipped in-payload value must fail the content hash"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for a random workload, step mode, and checkpoint cadence,
    /// serialize→decode→resume reproduces the uninterrupted golden stats.
    #[test]
    fn random_cadence_roundtrips(
        which in 0usize..13,
        step in prop::sample::select(vec![StepMode::Event, StepMode::Cycle]),
        frac in 1u64..10,
    ) {
        let (bench, out) = &compiled()[which];
        let opts = SimOptions { step, ..SimOptions::default() };
        let (want, cycles) = baseline(bench, out, &opts);
        // Cadence anywhere from ~10% to ~90% of the run.
        let every = (cycles * frac / 10).max(1);
        let (ckpt_stats, taken) = checkpointing_run(bench, out, &opts, every);
        prop_assert_eq!(&ckpt_stats, &want);
        if let Some(mid) = taken.last() {
            let decoded = Checkpoint::decode(&mid.encode())
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            let got = resumed_run(bench, out, &opts, &decoded);
            prop_assert_eq!(&got, &want);
        }
    }
}
