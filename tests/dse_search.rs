//! Property and integration tests for the `dse search` design-space
//! driver.
//!
//! The properties under test are the ones the feature's correctness
//! rests on: the emitted frontier is actually non-dominated, it is
//! element-identical at any worker count, and a search interrupted
//! mid-flight (via `--limit` + journal) resumes to a report
//! byte-identical to an uninterrupted run.

use plasticine::arch::{DseGrid, GridMix};
use plasticine::dse::{search, PointOutcome, SearchConfig};
use plasticine::journal::Journal;
use plasticine::workloads::{all, Bench, Scale};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mix(names: &[&str]) -> Vec<Bench> {
    let benches: Vec<Bench> = all(Scale(1))
        .into_iter()
        .filter(|b| names.contains(&b.name.as_str()))
        .collect();
    assert_eq!(benches.len(), names.len(), "unknown bench in {names:?}");
    benches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random small grids and workload mixes: the frontier is
    /// non-dominated, identical across worker counts {1, 2, 4}, and a
    /// limit-interrupted search resumed from its journal reproduces the
    /// cold report byte-for-byte.
    #[test]
    fn frontier_is_sound_and_deterministic(
        lanes in prop::sample::select(vec![vec![8usize], vec![16], vec![8, 16]]),
        channels in prop::sample::select(vec![vec![2usize], vec![4], vec![4, 2]]),
        kb in prop::sample::select(vec![vec![128usize], vec![256], vec![128, 256]]),
        bench_names in prop::sample::select(vec![
            vec!["InnerProduct"],
            vec!["TPCHQ6"],
            vec!["InnerProduct", "TPCHQ6"],
        ]),
    ) {
        let benches = mix(&bench_names);
        let grid = DseGrid {
            lanes,
            stages: vec![6],
            mixes: vec![GridMix::Checkerboard],
            scratchpad_kb: kb,
            dram_channels: channels,
        };
        let cfg = SearchConfig { grid, jobs: 1, ..SearchConfig::default() };

        // (b) element-identical across worker counts.
        let mut reports = Vec::new();
        for jobs in [1usize, 2, 4] {
            let cfg = SearchConfig { jobs, ..cfg.clone() };
            let mut journal = Journal::load(None).unwrap();
            reports.push((jobs, search(&benches, &cfg, &mut journal).unwrap()));
        }
        let reference = reports[0].1.to_json(&benches, &cfg).pretty();
        for (jobs, r) in &reports {
            prop_assert_eq!(
                &r.to_json(&benches, &cfg).pretty(), &reference,
                "report diverged at {} workers", jobs
            );
        }

        // (a) the frontier is actually non-dominated, and every completed
        // point off the frontier is dominated by something on it.
        let report = &reports[0].1;
        let front = report.frontier.entries();
        for a in front {
            for b in front {
                prop_assert!(
                    !a.obj.dominates(&b.obj),
                    "frontier point {} dominates frontier point {}", a.id, b.id
                );
            }
        }
        for (p, o) in &report.points {
            if let PointOutcome::Done(done) = o {
                let on_front = front.iter().any(|e| e.id == p.label());
                let dominated = front.iter().any(|e| e.obj.dominates(&done.obj));
                prop_assert!(
                    on_front || dominated,
                    "done point {} neither on the frontier nor dominated", p.label()
                );
            }
        }

        // (c) byte-identical resume: stop after 1 point, then finish.
        let mut journal = Journal::load(None).unwrap();
        let cfg_limited = SearchConfig { limit: Some(1), ..cfg.clone() };
        let first = search(&benches, &cfg_limited, &mut journal).unwrap();
        prop_assert!(first.evaluated_now <= 1);
        let resumed = search(&benches, &cfg, &mut journal).unwrap();
        prop_assert_eq!(
            resumed.to_json(&benches, &cfg).pretty(), reference,
            "resumed report diverged from the cold run"
        );
    }
}

// ---------------------------------------------------------------------
// CLI integration through the real binary.
// ---------------------------------------------------------------------

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_plasticine-run")
}

/// Fresh scratch directory per test (no tempdir crate; the target dir is
/// already ours to write under).
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> Output {
    Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawning plasticine-run")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

const SMALL_GRID: &[&str] = &[
    "--lanes",
    "8,16",
    "--stages",
    "6",
    "--scratchpad-kb",
    "256",
    "--channels",
    "2,4",
];

#[test]
fn cli_cold_and_resumed_runs_emit_identical_reports() {
    let dir = scratch("dse-resume");
    let mut cold = vec!["dse", "search", "InnerProduct"];
    cold.extend_from_slice(SMALL_GRID);
    cold.extend_from_slice(&["--jobs", "2", "--out", "cold.json"]);
    let o = run(&cold, &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("Pareto frontier"), "{}", stdout(&o));

    // Interrupted run: 1 point, then a resume that finishes the rest.
    let mut part = vec!["dse", "search", "InnerProduct"];
    part.extend_from_slice(SMALL_GRID);
    part.extend_from_slice(&["--journal", "j.json", "--limit", "1", "--out", "part.json"]);
    let o = run(&part, &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(stdout(&o).contains("not run"), "{}", stdout(&o));
    let journal = std::fs::read_to_string(dir.join("j.json")).unwrap();
    assert!(journal.contains("\"status\": \"done\""), "{journal}");

    let mut fin = vec!["dse", "search", "InnerProduct"];
    fin.extend_from_slice(SMALL_GRID);
    fin.extend_from_slice(&["--journal", "j.json", "--jobs", "4", "--out", "fin.json"]);
    let o = run(&fin, &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));

    let cold_report = std::fs::read(dir.join("cold.json")).unwrap();
    let fin_report = std::fs::read(dir.join("fin.json")).unwrap();
    assert_eq!(
        cold_report, fin_report,
        "resumed report differs from cold run"
    );

    // A third invocation has nothing left to do and reproduces the
    // report purely from the journal.
    let mut again = vec!["dse", "search", "InnerProduct"];
    again.extend_from_slice(SMALL_GRID);
    again.extend_from_slice(&["--journal", "j.json", "--out", "again.json"]);
    let o = run(&again, &dir);
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    assert!(
        stdout(&o).contains("0 evaluated this invocation"),
        "{}",
        stdout(&o)
    );
    assert_eq!(cold_report, std::fs::read(dir.join("again.json")).unwrap());
}

#[test]
fn cli_infeasible_points_are_typed_skips_not_failures() {
    let dir = scratch("dse-infeasible");
    // 4 stages cannot host the 5-stage reduction tree InnerProduct
    // needs: the point must be journaled infeasible, not failed, and the
    // search must still exit 0 with the feasible point on the frontier.
    let o = run(
        &[
            "dse",
            "search",
            "InnerProduct",
            "--lanes",
            "16",
            "--stages",
            "4,6",
            "--scratchpad-kb",
            "256",
            "--channels",
            "4",
            "--journal",
            "j.json",
        ],
        &dir,
    );
    assert_eq!(o.status.code(), Some(0), "stderr: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("1 done, 1 infeasible"), "{out}");
    let journal = std::fs::read_to_string(dir.join("j.json")).unwrap();
    assert!(journal.contains("\"status\": \"infeasible\""), "{journal}");
    assert!(journal.contains("\"status\": \"done\""), "{journal}");
}

#[test]
fn cli_rejects_malformed_grid_axes_as_usage_errors() {
    let dir = scratch("dse-usage");
    for (args, needle) in [
        (
            vec!["dse", "search", "InnerProduct", "--lanes", "8,zero"],
            "--lanes",
        ),
        (
            vec!["dse", "search", "InnerProduct", "--channels", "0"],
            "--channels",
        ),
        (
            vec!["dse", "search", "InnerProduct", "--mix", "diagonal"],
            "--mix",
        ),
        (
            vec!["dse", "search", "InnerProduct", "--limit", "0"],
            "--limit",
        ),
        (vec!["dse", "probe"], "search"),
        (vec!["dse", "search", "--lanes", "8"], "benchmark"),
    ] {
        let o = run(&args, &dir);
        assert_eq!(o.status.code(), Some(2), "args: {args:?}");
        assert!(
            stderr(&o).contains(needle),
            "args {args:?}: stderr {}",
            stderr(&o)
        );
    }
    let o = run(&["dse", "search", "NoSuchBench"], &dir);
    assert_eq!(o.status.code(), Some(1));
    assert!(stderr(&o).contains("unknown benchmark"));
}
