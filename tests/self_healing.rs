//! Self-healing and chaos-soak robustness suite.
//!
//! Pins the healing invariant at the heart of the robustness layer: a run
//! healed through online fault arrivals ([`chaos::run_healed`]) finishes
//! with stats **byte-identical** to manually resuming each degrade
//! checkpoint on the same relocated band ([`chaos::resume_on`]) — healing
//! is pure orchestration and never perturbs simulated state. Also covers:
//!
//! - the fault-arrives-exactly-at-checkpoint-cadence collision (the
//!   degrade report wins the boundary cycle and round-trips);
//! - byte-stable sampling: `FaultMap::sample` and `FaultTimeline::sample`
//!   are pure functions of (topology, spec, channels) — proptested;
//! - bounded `--checkpoint-dir` growth: cycle-stamped retention keeps the
//!   newest K snapshots while the legacy fixed slot tracks the newest;
//! - the 20-seed chaos soak: no panics, typed statuses only, zero
//!   invariant violations across solo/multi/scheduler surfaces;
//! - `multi` usage validation: duplicate tenants and overlapping pinned
//!   bands are typed exit-2 rejections before any work starts.

use plasticine::arch::{
    FaultMap, FaultSpec, FaultTimeline, FaultTimelineSpec, Partition, PlasticineParams, Topology,
};
use plasticine::chaos::{self, SoakConfig};
use plasticine::compiler::{compile_degraded, CompileOptions};
use plasticine::ppir::Machine;
use plasticine::service::{checkpoint_path, emit_checkpoint, latest_checkpoint, prune_checkpoints};
use plasticine::sim::{
    simulate_checkpointed, Checkpoint, CheckpointPolicy, SimError, SimOptions, SimResult,
};
use plasticine::workloads::{all, Bench, Scale};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn paper() -> PlasticineParams {
    PlasticineParams::paper_final()
}

/// The band every solo test runs on: the lower half of the chip with two
/// DRAM channels, leaving pattern-equivalent bands above it to heal onto.
fn band() -> Partition {
    Partition::new(0, 4, 2)
}

fn timeline(params: &PlasticineParams, spec: &str) -> FaultTimeline {
    let spec: FaultTimelineSpec = spec.parse().expect("well-formed timeline spec");
    FaultTimeline::sample(&Topology::new(params), &spec, band().channels)
}

/// Compile-and-run one segment the way the chaos layer does, with an
/// optional checkpoint cadence. The degrade report carries its own
/// checkpoint, so `every: None` still yields a resumable exit.
fn run_on(
    bench: &Bench,
    params: &PlasticineParams,
    band: Partition,
    opts: &SimOptions,
    every: Option<u64>,
    emit: &mut dyn FnMut(&Checkpoint),
) -> Result<SimResult, SimError> {
    let copts = CompileOptions {
        partition: Some(band),
        faults: opts.faults.clone(),
        ..CompileOptions::new()
    };
    let (out, prog, _notes) = compile_degraded(&bench.program, params, &copts)
        .map_err(|e| SimError::Config(format!("compile: {e}")))?;
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let mut o = opts.clone();
    o.dram.channels = band.channels;
    let policy = CheckpointPolicy {
        every,
        on_error: every.is_some(),
    };
    let r = simulate_checkpointed(&prog, &out, &mut m, &o, policy, None, emit)?;
    bench
        .verify(&m)
        .map_err(|e| SimError::Config(format!("verification failed: {e}")))?;
    Ok(r)
}

/// Replays the band history a healed run reported, resuming each degrade
/// checkpoint manually — the baseline the healed stats must match byte
/// for byte.
fn manual_chain(
    bench: &Bench,
    params: &PlasticineParams,
    bands: &[Partition],
    opts: &SimOptions,
    first: Checkpoint,
) -> SimResult {
    let mut ckpt = first;
    for (k, b) in bands.iter().enumerate().skip(1) {
        match chaos::resume_on(bench, params, *b, opts, &ckpt) {
            Ok(r) => {
                assert_eq!(
                    k,
                    bands.len() - 1,
                    "{}: manual chain finished on band {k} but the healed run \
                     reported {} bands",
                    bench.name,
                    bands.len()
                );
                return r;
            }
            Err(SimError::FabricDegraded(next)) => {
                assert!(
                    k < bands.len() - 1,
                    "{}: manual chain degraded again on the final band",
                    bench.name
                );
                ckpt = next.checkpoint;
            }
            Err(e) => panic!("{}: manual resume on band {k} failed: {e}", bench.name),
        }
    }
    unreachable!("the band history always ends in a completing segment")
}

/// The healing invariant, pinned for **every** Table 4 workload: probe
/// pinned seeds until a timeline degrades the run mid-flight, heal it,
/// and byte-compare the healed stats against manually resuming the same
/// degrade checkpoints on the same bands.
#[test]
fn healed_stats_match_manual_resume_for_every_workload() {
    let params = paper();
    for bench in all(Scale(1)) {
        // Calibrate the arrival horizon to the workload's own run length
        // so arrivals land mid-run rather than after completion.
        let plain = run_on(
            &bench,
            &params,
            band(),
            &SimOptions::default(),
            None,
            &mut |_| {},
        )
        .unwrap_or_else(|e| panic!("{}: pristine run failed: {e}", bench.name));
        let horizon = (plain.cycles * 3 / 4).max(64);
        let mut checked = false;
        for seed in 1..=60u64 {
            let spec = format!(
                "units=6,links=3,banks=2,esc=1,horizon={horizon},seed={seed},band=4@0,detect=8"
            );
            let opts = SimOptions {
                timeline: timeline(&params, &spec),
                ..SimOptions::default()
            };
            let report = match run_on(&bench, &params, band(), &opts, None, &mut |_| {}) {
                Ok(_) => continue, // this seed's arrivals missed the program
                Err(SimError::FabricDegraded(report)) => report,
                // Heavier transient rates can exhaust retries instead of
                // degrading the fabric — a typed outcome, not this seed.
                Err(SimError::FaultExhaustion { .. }) => continue,
                Err(e) => panic!("{}: seed {seed}: unexpected error: {e}", bench.name),
            };
            let h = match chaos::run_healed(&bench, &params, band(), &opts, 8) {
                Ok(h) => h,
                // Damage can cover every compatible band; typed, try the
                // next seed.
                Err(SimError::FabricDegraded(_)) => continue,
                Err(e) => panic!("{}: seed {seed}: healing failed: {e}", bench.name),
            };
            assert!(
                h.heals >= 1,
                "{}: degraded run healed zero times",
                bench.name
            );
            assert_eq!(h.bands.len() as u64, h.heals + 1);
            let manual = manual_chain(&bench, &params, &h.bands, &opts, report.checkpoint);
            assert_eq!(
                h.result.stats_json().compact(),
                manual.stats_json().compact(),
                "{}: seed {seed}: healed stats diverge from the manual resume chain",
                bench.name
            );
            checked = true;
            break;
        }
        assert!(
            checked,
            "{}: no seed in 1..=60 produced a healable degraded run",
            bench.name
        );
    }
}

/// Regression: an arrival landing **exactly** on a checkpoint-cadence
/// boundary. Arrivals fire before the cadence emission at the top of the
/// cycle, so the boundary cycle produces the degrade checkpoint (not a
/// cadence checkpoint that silently skips the arrival), and both healing
/// and a manual resume round-trip through it byte-identically.
#[test]
fn arrival_on_checkpoint_cadence_boundary_round_trips() {
    const EVERY: u64 = 256;
    let params = paper();
    let bench = all(Scale(1))
        .into_iter()
        .find(|b| b.name == "InnerProduct")
        .expect("InnerProduct is a Table 4 workload");
    for seed in 1..=60u64 {
        let spec = format!("units=6,links=3,banks=2,horizon=4096,seed={seed},band=4@0,detect=0");
        let mut tl = timeline(&params, &spec);
        // Re-pin every sampled event onto a cadence multiple, preserving
        // the sampled order (sorted, one event per boundary).
        for (i, e) in tl.events.iter_mut().enumerate() {
            e.cycle = EVERY * (i as u64 + 1);
        }
        tl.detect_delay = 0;
        let opts = SimOptions {
            timeline: tl,
            ..SimOptions::default()
        };
        let mut cadence: Vec<u64> = Vec::new();
        let report = match run_on(&bench, &params, band(), &opts, Some(EVERY), &mut |c| {
            cadence.push(c.cycle)
        }) {
            Ok(_) => continue,
            Err(SimError::FabricDegraded(r)) => r,
            Err(e) => panic!("seed {seed}: unexpected error: {e}"),
        };
        assert_eq!(
            report.cycle % EVERY,
            0,
            "every event was pinned to a cadence boundary"
        );
        assert_eq!(report.checkpoint.cycle, report.cycle);
        // The boundary cycle belongs to the degrade report: the cadence
        // sink got the auto-checkpoint (on_error), not a separate cadence
        // emission racing the arrival.
        assert_eq!(
            cadence.iter().filter(|&&c| c == report.cycle).count(),
            1,
            "seed {seed}: boundary cycle {} checkpointed {:?}",
            report.cycle,
            cadence
        );
        let h = match chaos::run_healed(&bench, &params, band(), &opts, 8) {
            Ok(h) => h,
            Err(SimError::FabricDegraded(_)) => continue,
            Err(e) => panic!("seed {seed}: healing failed: {e}"),
        };
        assert_eq!(h.degrade_cycles[0], report.cycle);
        let manual = manual_chain(&bench, &params, &h.bands, &opts, report.checkpoint);
        assert_eq!(
            h.result.stats_json().compact(),
            manual.stats_json().compact(),
            "seed {seed}: cadence-boundary heal diverges from manual resume"
        );
        return;
    }
    panic!("no seed in 1..=60 degraded InnerProduct on a cadence boundary");
}

/// The chaos soak at its default 20 pinned seeds: every iteration ends in
/// a typed status, nothing panics, no invariant violation — and healing
/// is actually exercised, not vacuously green.
#[test]
fn chaos_soak_twenty_pinned_seeds_holds_every_invariant() {
    let params = paper();
    let cfg = SoakConfig::default();
    assert!(cfg.seeds >= 20, "the default soak must cover >= 20 seeds");
    let report = chaos::soak(&params, &cfg);
    assert_eq!(report.iterations.len(), cfg.seeds as usize);
    let typed = [
        "ok",
        "healed",
        "failed",
        "runtime",
        "usage",
        "compile",
        "deadlock",
        "fault_exhaustion",
        "cycle_budget",
        "fabric_degraded",
    ];
    for it in &report.iterations {
        assert!(
            typed.contains(&it.status.as_str()),
            "seed {} ({} {}): untyped status `{}`",
            it.seed,
            it.mode,
            it.bench,
            it.status
        );
    }
    assert_eq!(report.panics(), 0, "soak iterations panicked");
    let violations: Vec<&str> = report
        .iterations
        .iter()
        .filter_map(|i| i.violation.as_deref())
        .collect();
    assert!(violations.is_empty(), "soak violations: {violations:?}");
    assert!(report.passed());
    assert!(
        report.healed() >= 1,
        "20 seeds never healed anything — the soak is vacuous"
    );
    // The machine-readable report mirrors the verdict.
    let json = report.to_json();
    let summary = json.get("summary").expect("report has a summary");
    assert_eq!(summary.get("passed").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        summary.get("iterations").and_then(|v| v.as_u64()),
        Some(cfg.seeds)
    );
}

/// Retention: `emit_checkpoint` keeps the newest K cycle-stamped
/// snapshots, always refreshes the legacy fixed-name slot with the newest
/// bytes, and `latest_checkpoint` falls back to the legacy slot when no
/// stamped history exists.
#[test]
fn checkpoint_retention_bounds_growth_and_tracks_newest() {
    let params = paper();
    let bench = all(Scale(1))
        .into_iter()
        .find(|b| b.name == "InnerProduct")
        .expect("InnerProduct is a Table 4 workload");
    // Harvest real checkpoints from a cadence run (no timeline).
    let mut cs: Vec<Checkpoint> = Vec::new();
    run_on(
        &bench,
        &params,
        band(),
        &SimOptions::default(),
        Some(128),
        &mut |c| cs.push(c.clone()),
    )
    .expect("pristine cadence run completes");
    assert!(cs.len() >= 4, "need >= 4 checkpoints, got {}", cs.len());
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("retention");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let dir_s = dir.to_str().expect("utf-8 scratch path");
    let keep = 3usize;
    for c in &cs {
        emit_checkpoint(dir_s, &bench.name, keep, c).expect("emit succeeds");
    }
    let stamped: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("scratch dir readable")
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("innerproduct-c"))
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        stamped.len(),
        keep,
        "retention keeps exactly K stamped files"
    );
    // The survivors are the newest K, in cycle order.
    let want: Vec<u64> = cs[cs.len() - keep..].iter().map(|c| c.cycle).collect();
    let got: Vec<String> = stamped
        .iter()
        .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
        .collect();
    for (name, cycle) in got.iter().zip(&want) {
        assert_eq!(
            name,
            &format!("innerproduct-c{cycle:012}.ckpt.json"),
            "stamped survivors are the newest {keep}"
        );
    }
    // The legacy slot holds the newest snapshot, byte for byte.
    let legacy = checkpoint_path(dir_s, &bench.name);
    assert!(legacy.exists(), "legacy fixed slot is always refreshed");
    assert_eq!(
        std::fs::read(&legacy).unwrap(),
        std::fs::read(stamped.last().unwrap()).unwrap(),
        "legacy slot tracks the newest stamped snapshot"
    );
    assert_eq!(
        latest_checkpoint(dir_s, &bench.name).as_deref(),
        Some(stamped.last().unwrap().as_path())
    );
    // keep=0 clamps to 1: pruning never deletes the newest snapshot.
    prune_checkpoints(dir_s, &bench.name, 0);
    assert!(stamped.last().unwrap().exists());
    assert!(!stamped[0].exists());
    // With the stamped history gone, the legacy slot is the fallback.
    for p in &stamped {
        let _ = std::fs::remove_file(p);
    }
    assert_eq!(
        latest_checkpoint(dir_s, &bench.name),
        Some(legacy.clone()),
        "latest_checkpoint falls back to the legacy slot"
    );
    // Resumability: the retained snapshot loads.
    let c = Checkpoint::load(&legacy).expect("legacy snapshot loads");
    assert_eq!(c.cycle, cs.last().unwrap().cycle);
}

/// `multi` rejects duplicate tenants and overlapping pinned bands up
/// front with usage errors (exit 2), before any compilation or
/// simulation starts.
#[test]
fn multi_rejects_duplicates_and_overlaps_with_exit_two() {
    let bin = env!("CARGO_BIN_EXE_plasticine-run");
    // Duplicate tenant (case-insensitive: names are canonicalized).
    let out = Command::new(bin)
        .args(["multi", "InnerProduct=2@0", "innerproduct=2@4"])
        .output()
        .expect("spawning plasticine-run");
    assert_eq!(out.status.code(), Some(2), "duplicate tenant must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("duplicate tenant `InnerProduct`"),
        "stderr names the duplicate: {err}"
    );
    // Overlapping pinned bands.
    let out = Command::new(bin)
        .args(["multi", "InnerProduct=4@0", "OuterProduct=4@2"])
        .output()
        .expect("spawning plasticine-run");
    assert_eq!(out.status.code(), Some(2), "overlapping bands must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("overlaps allocated partition"),
        "stderr names the overlap: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `FaultTimeline::sample` and `FaultMap::sample` are pure: the same
    /// (topology, spec, channels) triple yields byte-identical results on
    /// every call — the property the checkpoint options guard, the soak's
    /// pinned seeds, and the CI gate all lean on. The timeline spec goes
    /// through the public string grammar, so the parse path is covered
    /// too.
    #[test]
    fn fault_sampling_is_byte_stable_at_pinned_seeds(
        units in 0usize..=6,
        links in 0usize..=6,
        banks in 0usize..=4,
        esc in 0usize..=2,
        horizon in 1u64..10_000,
        seed in 0u64..1_000_000,
        rows in 1usize..=8,
        channels in 1usize..=4,
    ) {
        let params = paper();
        let topo = Topology::new(&params);
        let y0 = (seed as usize) % (params.rows - rows + 1);
        let text = format!(
            "units={units},links={links},banks={banks},esc={esc},\
             horizon={horizon},seed={seed},band={rows}@{y0},detect=8"
        );
        let spec: FaultTimelineSpec = text.parse().expect("grammar accepts the spec");
        let a = FaultTimeline::sample(&topo, &spec, channels);
        let b = FaultTimeline::sample(&topo, &spec, channels);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert!(a.events.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "sampled events are sorted by cycle");
        let fspec = FaultSpec {
            pcus: units,
            pmus: units,
            links,
            banks,
            channels: channels.saturating_sub(1).min(1),
            seed,
            ..FaultSpec::default()
        };
        let m1 = FaultMap::sample(&topo, &fspec, channels);
        let m2 = FaultMap::sample(&topo, &fspec, channels);
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(format!("{m1:?}"), format!("{m2:?}"));
        prop_assert_eq!(m1.summary(), m2.summary());
    }
}
