//! The multi-tenant headline invariant, end to end: a tenant co-located
//! with others on a partitioned chip produces stats byte-identical to
//! running alone on a dedicated fabric of its partition's geometry, in
//! both step modes and at any simulator thread count — and a preempted
//! tenant (checkpoint, evict, resume) finishes with the same bytes as an
//! uninterrupted one, even when resumed at a different band offset.

use plasticine::arch::{Partition, PlasticineParams};
use plasticine::compiler::{compile_degraded, CompileOptions, CompileOutput};
use plasticine::ppir::{Machine, Program};
use plasticine::sim::{simulate, MultiSim, SimOptions, StepMode, TenantId};
use plasticine::workloads::{all, Bench, Scale};

fn params() -> PlasticineParams {
    PlasticineParams::paper_final()
}

fn opts(step: StepMode, threads: usize, channels: usize) -> SimOptions {
    let mut o = SimOptions {
        step,
        threads,
        ..SimOptions::default()
    };
    // A partitioned tenant simulates against exactly its channel share.
    o.dram.channels = channels;
    o
}

fn compile_on(bench: &Bench, band: Partition) -> (CompileOutput, Program) {
    let copts = CompileOptions {
        partition: Some(band),
        ..CompileOptions::new()
    };
    let (out, prog, _degraded) =
        compile_degraded(&bench.program, &params(), &copts).expect("bench compiles on its band");
    (out, prog)
}

/// The reference: the bench alone on a dedicated fabric of the band's
/// geometry.
fn solo_stats(bench: &Bench, band: Partition, step: StepMode, threads: usize) -> String {
    let (out, prog) = compile_on(bench, band);
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let o = opts(step, threads, band.channels);
    let r = simulate(&prog, &out, &mut m, &o).expect("solo run succeeds");
    bench.verify(&m).expect("solo run verifies");
    r.stats_json().pretty()
}

/// Co-locates `group` on disjoint 2-row bands (1 channel each), runs to
/// completion, and checks every tenant's stats against its solo
/// reference, byte for byte.
fn isolation(step: StepMode, threads: usize) {
    let p = params();
    let benches = all(Scale(1));
    for group in benches.chunks(4) {
        let mut ms = MultiSim::new(p.coalescing_units, 1024);
        let mut bands = Vec::new();
        for (i, bench) in group.iter().enumerate() {
            let band = Partition::new(2 * i, 2, 1);
            let (out, prog) = compile_on(bench, band);
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let o = opts(step, threads, band.channels);
            ms.admit(&bench.name, &prog, &out, &mut m, &o, None)
                .expect("tenant admits");
            // Two-phase simulation: the functional result exists already.
            bench.verify(&m).expect("tenant verifies");
            bands.push(band);
        }
        ms.run().expect("co-located group completes");
        for (i, t) in ms.tenants().iter().enumerate() {
            let multi = t.result().expect("tenant done").stats_json().pretty();
            let solo = solo_stats(&group[i], bands[i], step, threads);
            assert_eq!(
                multi, solo,
                "{} co-located on {} must match its solo run ({step:?}, {threads} threads)",
                group[i].name, bands[i]
            );
        }
    }
}

#[test]
fn colocated_stats_match_solo_event_mode_1_thread() {
    isolation(StepMode::Event, 1);
}

#[test]
fn colocated_stats_match_solo_event_mode_4_threads() {
    isolation(StepMode::Event, 4);
}

#[test]
fn colocated_stats_match_solo_cycle_mode_1_thread() {
    isolation(StepMode::Cycle, 1);
}

#[test]
fn colocated_stats_match_solo_cycle_mode_4_threads() {
    isolation(StepMode::Cycle, 4);
}

/// Runs GEMM+BFS co-located; optionally preempts BFS after one round and
/// resumes it from the checkpoint on `resume_band`. Returns the final
/// (GEMM, BFS) stats.
fn gemm_bfs(preempt: Option<Partition>) -> (String, String) {
    let p = params();
    let benches = all(Scale(1));
    let gemm = benches.iter().find(|b| b.name == "GEMM").unwrap();
    let bfs = benches.iter().find(|b| b.name == "BFS").unwrap();
    let gemm_band = Partition::new(0, 3, 1);
    let bfs_band = Partition::new(3, 3, 1);

    let mut ms = MultiSim::new(p.coalescing_units, 1024);
    for (bench, band) in [(gemm, gemm_band), (bfs, bfs_band)] {
        let (out, prog) = compile_on(bench, band);
        let mut m = Machine::new(&prog);
        bench.load(&mut m);
        ms.admit(
            &bench.name,
            &prog,
            &out,
            &mut m,
            &opts(StepMode::Event, 1, band.channels),
            None,
        )
        .expect("tenant admits");
    }
    let mut bfs_slot = 1;
    if let Some(resume_band) = preempt {
        ms.round().expect("first round completes");
        let ckpt = ms.evict(TenantId(1)).expect("BFS is live and evictable");
        assert!(ckpt.cycle > 0, "eviction lands after simulated progress");
        // The checkpoint's config hash is offset-normalized, so a
        // bitstream for any pattern-equivalent band (same height, offset
        // of the same checkerboard parity) accepts it.
        let (out, prog) = compile_on(bfs, resume_band);
        let mut m = Machine::new(&prog);
        bfs.load(&mut m);
        let id = ms
            .admit(
                &bfs.name,
                &prog,
                &out,
                &mut m,
                &opts(StepMode::Event, 1, resume_band.channels),
                Some(&ckpt),
            )
            .expect("evicted tenant resumes");
        bfs_slot = id.0;
    }
    ms.run().expect("all tenants complete");
    let stats = |i: usize| {
        ms.tenants()[i]
            .result()
            .expect("tenant done")
            .stats_json()
            .pretty()
    };
    (stats(0), stats(bfs_slot))
}

#[test]
fn preemption_round_trips_byte_identical_stats() {
    let (gemm_ref, bfs_ref) = gemm_bfs(None);

    // Evict + resume on the same band: both tenants' final stats must be
    // byte-identical to the uninterrupted run.
    let (gemm_same, bfs_same) = gemm_bfs(Some(Partition::new(3, 3, 1)));
    assert_eq!(gemm_same, gemm_ref, "non-preempted tenant is untouched");
    assert_eq!(bfs_same, bfs_ref, "preempted tenant round-trips exactly");

    // Relocated resume: the freed band's geometry at a different offset.
    // Aggregate stats are translation-invariant, so the bytes still
    // match.
    let (gemm_moved, bfs_moved) = gemm_bfs(Some(Partition::new(5, 3, 1)));
    assert_eq!(gemm_moved, gemm_ref);
    assert_eq!(bfs_moved, bfs_ref, "relocated resume round-trips exactly");
}
