//! Integration tests for `plasticine-run serve`, driven through the real
//! binary over its Unix socket.
//!
//! The headline scenarios are the ones the daemon exists for: a panicking
//! and a deadline-exceeding request in one session must yield typed error
//! responses while later requests succeed with stats byte-identical to
//! the one-shot CLI; and a saturated admission queue must shed with typed
//! `overloaded` responses and consistent counters.

#![cfg(unix)]

use plasticine::json::Json;
use plasticine::workloads::{all, Scale};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_plasticine-run")
}

/// Fresh scratch directory per test (no tempdir crate; the target dir is
/// already ours to write under).
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    sock: PathBuf,
}

impl Daemon {
    /// Starts `plasticine-run serve --socket …` and waits for the socket
    /// to accept connections. stdin is `/dev/null` (immediate EOF), which
    /// must NOT shut the daemon down while a socket is configured.
    fn start(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Daemon {
        let sock = dir.join("serve.sock");
        let mut c = Command::new(bin());
        c.arg("serve")
            .arg("--socket")
            .arg(&sock)
            .args(args)
            .current_dir(dir)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::from(
                std::fs::File::create(dir.join("serve.stderr")).unwrap(),
            ));
        for (k, v) in envs {
            c.env(k, v);
        }
        let child = c.spawn().expect("spawning plasticine-run serve");
        let deadline = Instant::now() + Duration::from_secs(60);
        while UnixStream::connect(&sock).is_err() {
            assert!(
                Instant::now() < deadline,
                "daemon never opened its socket; stderr: {}",
                std::fs::read_to_string(dir.join("serve.stderr")).unwrap_or_default()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, sock }
    }

    fn connect(&self) -> Client {
        let stream = UnixStream::connect(&self.sock).expect("connecting to daemon socket");
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            reader,
            writer: stream,
            pending: Vec::new(),
        }
    }

    /// Sends `shutdown` on a fresh connection, checks the final response,
    /// and waits for the process to exit 0.
    fn shutdown(mut self, dir: &Path) -> Json {
        let mut c = self.connect();
        c.send(r#"{"id": "bye", "op": "shutdown"}"#);
        let resp = c.recv();
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"), "{resp:?}");
        assert!(
            resp.get("stats").is_some(),
            "shutdown response should carry final stats: {resp:?}"
        );
        let deadline = Instant::now() + Duration::from_secs(60);
        let status = loop {
            if let Some(s) = self.child.try_wait().unwrap() {
                break s;
            }
            assert!(Instant::now() < deadline, "daemon did not exit after drain");
            std::thread::sleep(Duration::from_millis(20));
        };
        let err = std::fs::read_to_string(dir.join("serve.stderr")).unwrap_or_default();
        assert_eq!(status.code(), Some(0), "daemon exit; stderr: {err}");
        assert!(
            err.contains("workers joined"),
            "drain summary should report joined workers: {err}"
        );
        resp
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    /// Responses read while waiting for a specific id (worker threads
    /// complete out of order, so lines interleave across requests).
    pending: Vec<Json>,
}

impl Client {
    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("writing request");
    }

    fn recv_raw(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("reading response");
        assert!(n > 0, "daemon closed the connection");
        Json::parse(&line).expect("response is JSON")
    }

    fn recv(&mut self) -> Json {
        if self.pending.is_empty() {
            self.recv_raw()
        } else {
            self.pending.remove(0)
        }
    }

    /// The response whose `id` is the string `id`, buffering any others
    /// that arrive first.
    fn recv_id(&mut self, id: &str) -> Json {
        let matches = |r: &Json| r.get("id").and_then(Json::as_str) == Some(id);
        if let Some(pos) = self.pending.iter().position(matches) {
            return self.pending.remove(pos);
        }
        loop {
            let r = self.recv_raw();
            if matches(&r) {
                return r;
            }
            self.pending.push(r);
        }
    }

    /// One request, one response (only safe with no other outstanding
    /// requests on this connection).
    fn ask(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn status_of(resp: &Json) -> (&str, i64) {
    (
        resp.get("status").and_then(Json::as_str).unwrap(),
        resp.get("code").and_then(Json::as_i64).unwrap(),
    )
}

/// The one-shot CLI's `--stats-json` output for a benchmark, as written
/// to disk.
fn oneshot_stats(dir: &Path, bench: &str) -> String {
    let file = format!("{}.oneshot.json", bench.to_ascii_lowercase());
    let o = Command::new(bin())
        .args(["run", bench, "--stats-json", &file])
        .current_dir(dir)
        .output()
        .expect("spawning one-shot run");
    assert_eq!(
        o.status.code(),
        Some(0),
        "one-shot {bench}: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    std::fs::read_to_string(dir.join(&file)).unwrap()
}

/// The daemon must survive a panicking request AND a deadline-exceeding
/// request in one session, answering both with typed errors; a subsequent
/// `run` must succeed with stats byte-identical to the one-shot CLI.
#[test]
fn daemon_survives_panic_and_deadline_with_typed_errors() {
    let dir = scratch("svc-isolation");
    let daemon = Daemon::start(
        &dir,
        &["--workers", "1", "--deadline-ms", "3000"],
        &[
            ("PLASTICINE_TEST_PANIC", "GEMM"),
            ("PLASTICINE_TEST_HANG", "BFS"),
        ],
    );
    let mut c = daemon.connect();

    let resp = c.ask(r#"{"id": 1, "op": "run", "bench": "GEMM"}"#);
    assert_eq!(status_of(&resp), ("runtime", 1), "{resp:?}");
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("panicked"),
        "{resp:?}"
    );
    assert_eq!(resp.get("id").unwrap().as_i64(), Some(1));

    let resp = c.ask(r#"{"id": 2, "op": "run", "bench": "BFS"}"#);
    assert_eq!(status_of(&resp), ("runtime", 1), "{resp:?}");
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("deadline exceeded"),
        "{resp:?}"
    );

    // The same worker thread keeps serving: a healthy request after both
    // failures succeeds, byte-identical to the one-shot CLI.
    let resp = c.ask(r#"{"id": 3, "op": "run", "bench": "InnerProduct"}"#);
    assert_eq!(status_of(&resp), ("ok", 0), "{resp:?}");
    assert_eq!(resp.get("verified").unwrap().as_bool(), Some(true));
    assert_eq!(
        resp.get("stats").unwrap().pretty(),
        oneshot_stats(&dir, "InnerProduct"),
        "served stats must equal the one-shot CLI --stats-json output"
    );

    let stats = c.ask(r#"{"op": "stats"}"#);
    let by = stats
        .get("stats")
        .unwrap()
        .get("by_status")
        .unwrap()
        .clone();
    assert_eq!(by.get("runtime").and_then(Json::as_u64), Some(2), "{by:?}");
    assert_eq!(by.get("ok").and_then(Json::as_u64), Some(1), "{by:?}");

    daemon.shutdown(&dir);
}

/// Every served workload's stats object is byte-identical to what the
/// one-shot CLI writes with `--stats-json` — the daemon is a cache in
/// front of the same deterministic pipeline, never a different one.
#[test]
fn served_stats_are_byte_identical_to_the_oneshot_cli_for_all_workloads() {
    let dir = scratch("svc-identity");
    let names: Vec<String> = all(Scale(1)).into_iter().map(|b| b.name).collect();
    let daemon = Daemon::start(&dir, &["--workers", "4", "--queue-depth", "32"], &[]);
    let mut c = daemon.connect();
    for (i, name) in names.iter().enumerate() {
        c.send(&format!(r#"{{"id": {i}, "op": "run", "bench": "{name}"}}"#));
    }
    // Workers finish out of order; collect responses and match by id.
    let mut by_id: Vec<Option<Json>> = vec![None; names.len()];
    for _ in 0..names.len() {
        let resp = c.recv();
        let id = resp.get("id").and_then(Json::as_usize).unwrap();
        by_id[id] = Some(resp);
    }
    for (name, resp) in names.iter().zip(by_id) {
        let resp = resp.expect("response for every request");
        assert_eq!(status_of(&resp), ("ok", 0), "{name}: {resp:?}");
        assert_eq!(
            resp.get("stats").unwrap().pretty(),
            oneshot_stats(&dir, name),
            "{name}: served stats must equal the one-shot CLI output"
        );
    }
    // Second identical sweep: all compiles must now hit the shared cache.
    for (i, name) in names.iter().enumerate() {
        c.send(&format!(r#"{{"id": {i}, "op": "run", "bench": "{name}"}}"#));
    }
    for _ in 0..names.len() {
        let resp = c.recv();
        assert_eq!(status_of(&resp), ("ok", 0), "{resp:?}");
    }
    let final_stats = daemon.shutdown(&dir);
    let s = final_stats.get("stats").unwrap();
    assert_eq!(
        s.get("cache_hits").and_then(Json::as_u64),
        Some(names.len() as u64),
        "second sweep should be all cache hits: {s:?}"
    );
}

/// A saturated admission queue sheds immediately with a typed
/// `overloaded` response, the shed counter matches, and control-plane
/// `stats` keeps answering throughout.
#[test]
fn saturated_queue_sheds_with_typed_overloaded_responses() {
    let dir = scratch("svc-shed");
    let daemon = Daemon::start(
        &dir,
        &[
            "--workers",
            "1",
            "--queue-depth",
            "2",
            "--deadline-ms",
            "3000",
        ],
        &[("PLASTICINE_TEST_HANG", "GEMM")],
    );
    let mut c = daemon.connect();
    let mut poll = 0u32;
    let mut stats_poll = |c: &mut Client| -> Json {
        poll += 1;
        let id = format!("poll-{poll}");
        c.send(&format!(r#"{{"id": "{id}", "op": "stats"}}"#));
        c.recv_id(&id).get("stats").unwrap().clone()
    };
    // Occupy the single worker with a hanging request, then fill the
    // two-deep queue behind it.
    c.send(r#"{"id": "h", "op": "run", "bench": "GEMM"}"#);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = stats_poll(&mut c);
        if s.get("in_flight").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < deadline, "worker never picked up the job");
        std::thread::sleep(Duration::from_millis(20));
    }
    c.send(r#"{"id": "q1", "op": "run", "bench": "GEMM"}"#);
    c.send(r#"{"id": "q2", "op": "run", "bench": "GEMM"}"#);
    loop {
        let s = stats_poll(&mut c);
        if s.get("queue_len").and_then(Json::as_u64) == Some(2) {
            break;
        }
        assert!(Instant::now() < deadline, "queue never filled");
        std::thread::sleep(Duration::from_millis(20));
    }
    // Queue full: the next data-plane request is shed immediately with
    // the typed response — even a cheap one that would finish quickly.
    c.send(r#"{"id": "shed-me", "op": "run", "bench": "InnerProduct"}"#);
    let resp = c.recv_id("shed-me");
    assert_eq!(status_of(&resp), ("overloaded", 7), "{resp:?}");
    assert!(
        resp.get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("queue full"),
        "{resp:?}"
    );
    let s = stats_poll(&mut c);
    assert_eq!(s.get("shed").and_then(Json::as_u64), Some(1), "{s:?}");
    assert_eq!(
        s.get("by_status")
            .unwrap()
            .get("overloaded")
            .and_then(Json::as_u64),
        Some(1),
        "shed counter and by_status must agree: {s:?}"
    );
    // Drain: the hung job is abandoned at its deadline; the queued ones
    // expire (their deadlines started at admission). All three answer
    // with typed errors, then shutdown completes with exit 0.
    for id in ["h", "q1", "q2"] {
        let resp = c.recv_id(id);
        assert_eq!(status_of(&resp), ("runtime", 1), "{resp:?}");
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("deadline exceeded"),
            "{resp:?}"
        );
    }
    daemon.shutdown(&dir);
}

/// Requests with a missing or unknown benchmark, or malformed JSON, are
/// typed errors mirroring the CLI exit-code contract — and never disturb
/// later requests on the same connection.
#[test]
fn protocol_errors_are_typed_and_nonfatal() {
    let dir = scratch("svc-proto");
    let daemon = Daemon::start(&dir, &["--workers", "1"], &[]);
    let mut c = daemon.connect();
    let resp = c.ask("this is not json");
    assert_eq!(status_of(&resp), ("usage", 2), "{resp:?}");
    let resp = c.ask(r#"{"op": "levitate"}"#);
    assert_eq!(status_of(&resp), ("usage", 2), "{resp:?}");
    let resp = c.ask(r#"{"op": "run"}"#);
    assert_eq!(status_of(&resp), ("usage", 2), "{resp:?}");
    let resp = c.ask(r#"{"op": "run", "bench": "Nonsense"}"#);
    assert_eq!(status_of(&resp), ("runtime", 1), "{resp:?}");
    let resp = c.ask(r#"{"op": "run", "bench": "InnerProduct", "scale": 0}"#);
    assert_eq!(status_of(&resp), ("usage", 2), "{resp:?}");
    let resp = c.ask(r#"{"op": "run", "bench": "InnerProduct"}"#);
    assert_eq!(status_of(&resp), ("ok", 0), "{resp:?}");
    daemon.shutdown(&dir);
}

/// `batch` over the socket: per-bench containment (a panicking job is a
/// typed entry, not a sunk response) and an overall status mirroring the
/// first failure.
#[test]
fn served_batch_contains_per_bench_failures() {
    let dir = scratch("svc-batch");
    let daemon = Daemon::start(
        &dir,
        &["--workers", "1", "--deadline-ms", "60000"],
        &[("PLASTICINE_TEST_PANIC", "GEMM")],
    );
    let mut c = daemon.connect();
    let resp = c.ask(r#"{"op": "batch", "benches": ["InnerProduct", "GEMM", "TPCHQ6"]}"#);
    assert_eq!(status_of(&resp), ("runtime", 1), "{resp:?}");
    let err = resp.get("error").unwrap().as_str().unwrap();
    assert!(err.contains("1 of 3 jobs failed"), "{err}");
    assert!(err.contains("panicked"), "{err}");
    // Healthy batch afterwards on the same daemon.
    let resp = c.ask(r#"{"op": "batch", "benches": ["InnerProduct", "TPCHQ6"]}"#);
    assert_eq!(status_of(&resp), ("ok", 0), "{resp:?}");
    assert_eq!(resp.get("ok").and_then(Json::as_u64), Some(2));
    assert_eq!(resp.get("failed").and_then(Json::as_u64), Some(0));
    daemon.shutdown(&dir);
}

/// The multi-tenant ops end to end: `submit` places tenants on disjoint
/// fabric bands, `tenants` reports their lifecycle, `evict` checkpoints
/// a running tenant and requeues it — and every tenant (including the
/// preempted one) finishes with stats byte-identical to the partitioned
/// one-shot CLI on a band of the same geometry.
#[test]
fn submitted_tenants_match_partitioned_oneshot_and_survive_eviction() {
    let dir = scratch("svc-tenants");
    let daemon = Daemon::start(&dir, &[], &[]);
    let mut c = daemon.connect();

    for (id, bench) in [("t0", "GEMM"), ("t1", "BFS")] {
        let r = c.ask(&format!(
            r#"{{"id": "{id}", "op": "submit", "bench": "{bench}", "rows": 3, "channels": 1}}"#
        ));
        assert_eq!(status_of(&r), ("ok", 0), "{r:?}");
    }

    // Bad submissions and evictions are typed, inline, and nonfatal.
    let r = c.ask(r#"{"id": "no-bench", "op": "submit", "rows": 3}"#);
    assert_eq!(status_of(&r), ("usage", 2), "{r:?}");
    let r = c.ask(r#"{"id": "no-such", "op": "evict", "tenant": 99}"#);
    assert_eq!(status_of(&r), ("runtime", 1), "{r:?}");

    let deadline = Instant::now() + Duration::from_secs(240);
    let tenant = |c: &mut Client, i: usize| -> Json {
        let r = c.ask(r#"{"id": "ls", "op": "tenants"}"#);
        assert_eq!(status_of(&r), ("ok", 0), "{r:?}");
        r.get("tenants").unwrap().as_arr().unwrap()[i].clone()
    };
    let state_of = |t: &Json| t.get("state").unwrap().as_str().unwrap().to_string();

    // Evict GEMM mid-run: the eviction lands at a quantum boundary, the
    // checkpointed tenant goes back on the queue, and the scheduler
    // resumes it on whatever same-geometry band is free.
    while state_of(&tenant(&mut c, 0)) != "running" {
        assert!(Instant::now() < deadline, "GEMM was never placed");
        std::thread::sleep(Duration::from_millis(10));
    }
    let r = c.ask(r#"{"id": "ev", "op": "evict", "tenant": 0}"#);
    assert_eq!(status_of(&r), ("ok", 0), "{r:?}");
    assert_eq!(
        r.get("resumable").and_then(Json::as_bool),
        Some(true),
        "evicted tenant must carry a checkpoint: {r:?}"
    );

    loop {
        let states: Vec<String> = (0..2).map(|i| state_of(&tenant(&mut c, i))).collect();
        if states.iter().all(|s| s == "done") {
            break;
        }
        if let Some(i) = states.iter().position(|s| s == "failed") {
            panic!("tenant {i} failed: {:?}", tenant(&mut c, i));
        }
        assert!(
            Instant::now() < deadline,
            "tenants never finished: {states:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let t0 = tenant(&mut c, 0);
    assert!(
        t0.get("preemptions").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "the evicted tenant must record its preemption: {t0:?}"
    );

    // Byte-identity against the partitioned one-shot CLI. The offset is
    // irrelevant — aggregate stats are translation-invariant, so even a
    // tenant resumed on a different band matches the 3@0/1 reference.
    for (i, bench) in [(0usize, "GEMM"), (1, "BFS")] {
        let served = tenant(&mut c, i)
            .get("stats")
            .expect("done tenant carries stats")
            .pretty();
        let file = format!("{}.band.json", bench.to_ascii_lowercase());
        let o = Command::new(bin())
            .args(["run", bench, "--partition", "3@0/1", "--stats-json", &file])
            .current_dir(&dir)
            .output()
            .expect("spawning partitioned one-shot run");
        assert_eq!(
            o.status.code(),
            Some(0),
            "one-shot {bench}: {}",
            String::from_utf8_lossy(&o.stderr)
        );
        let solo = std::fs::read_to_string(dir.join(&file)).unwrap();
        assert_eq!(
            served, solo,
            "{bench}: a served tenant's stats must match the partitioned one-shot CLI"
        );
    }

    daemon.shutdown(&dir);
}
