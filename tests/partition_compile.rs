//! CLI-level partition contract, driven through the real binary:
//! `--partition` compiles relocatable, hash-distinct artifacts per
//! offset; `run --config` with a mismatched `--partition` is a typed
//! usage error (exit 2); and partitioned solo runs are byte-identical
//! across offsets (aggregate stats are translation-invariant).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_plasticine-run")
}

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], cwd: &Path) -> Output {
    Command::new(bin())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawning plasticine-run")
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn wrong_partition_against_artifact_is_a_usage_error() {
    let dir = scratch("partition-mismatch");
    let o = run(
        &[
            "compile",
            "GEMM",
            "--partition",
            "3@2/1",
            "--out",
            "gemm.json",
        ],
        &dir,
    );
    assert!(o.status.success(), "compile failed: {}", stderr(&o));

    // The artifact knows its band; a contradicting flag is exit 2 with a
    // message naming both sides, not a silent override.
    let o = run(
        &[
            "run",
            "GEMM",
            "--config",
            "gemm.json",
            "--partition",
            "3@0/1",
        ],
        &dir,
    );
    assert_eq!(
        o.status.code(),
        Some(2),
        "mismatched --partition must be a usage error\nstderr: {}",
        stderr(&o)
    );
    assert!(
        stderr(&o).contains("3@0/1") && stderr(&o).contains("3@2/1"),
        "error must name both partitions:\n{}",
        stderr(&o)
    );

    // A whole-chip artifact contradicts any banded flag the same way.
    let o = run(&["compile", "GEMM", "--out", "full.json"], &dir);
    assert!(o.status.success(), "compile failed: {}", stderr(&o));
    let o = run(
        &[
            "run",
            "GEMM",
            "--config",
            "full.json",
            "--partition",
            "3@0/1",
        ],
        &dir,
    );
    assert_eq!(o.status.code(), Some(2), "stderr: {}", stderr(&o));
    assert!(
        stderr(&o).contains("whole fabric"),
        "error must say the artifact covers the whole fabric:\n{}",
        stderr(&o)
    );

    // The matching flag — and no flag at all — both run fine.
    let o = run(
        &[
            "run",
            "GEMM",
            "--config",
            "gemm.json",
            "--partition",
            "3@2/1",
        ],
        &dir,
    );
    assert!(o.status.success(), "matching flag: {}", stderr(&o));
    let o = run(&["run", "GEMM", "--config", "gemm.json"], &dir);
    assert!(o.status.success(), "artifact's own band: {}", stderr(&o));

    // Out-of-bounds and malformed bands are usage errors up front.
    for band in ["9@0/1", "4@6/1", "3@0/9", "3x0", "0@0/1"] {
        let o = run(&["run", "GEMM", "--partition", band], &dir);
        assert_eq!(
            o.status.code(),
            Some(2),
            "`--partition {band}` must be a usage error\nstderr: {}",
            stderr(&o)
        );
    }
}

#[test]
fn same_geometry_relocates_to_hash_distinct_equivalent_artifacts() {
    let dir = scratch("partition-relocate");
    for (band, out) in [("3@0/1", "a.json"), ("3@4/1", "b.json")] {
        let o = run(
            &["compile", "GEMM", "--partition", band, "--out", out],
            &dir,
        );
        assert!(o.status.success(), "compile {band}: {}", stderr(&o));
    }
    let a = std::fs::read_to_string(dir.join("a.json")).unwrap();
    let b = std::fs::read_to_string(dir.join("b.json")).unwrap();
    assert_ne!(a, b, "different offsets place different resources");

    // Both run and verify, and the aggregate stats agree byte-for-byte:
    // band placement is translation-equivariant.
    for (artifact, stats) in [("a.json", "sa.json"), ("b.json", "sb.json")] {
        let o = run(
            &["run", "GEMM", "--config", artifact, "--stats-json", stats],
            &dir,
        );
        assert!(o.status.success(), "run {artifact}: {}", stderr(&o));
    }
    let sa = std::fs::read_to_string(dir.join("sa.json")).unwrap();
    let sb = std::fs::read_to_string(dir.join("sb.json")).unwrap();
    assert_eq!(sa, sb, "stats must be offset-independent");
}
