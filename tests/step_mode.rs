//! Step-mode equivalence and error-classification suite.
//!
//! The event-driven kernel ([`StepMode::Event`]) must be an *exact*
//! semantic replacement for per-cycle stepping ([`StepMode::Cycle`]): same
//! cycle counts, same per-unit stall attribution, same DRAM statistics,
//! same RNG draw sequence under fault injection, and the same error at the
//! same cycle when a run fails. These tests pin all of that:
//!
//! - every Table 4 workload at `Scale(1)` produces byte-identical
//!   [`stats_json`](plasticine::sim::SimResult::stats_json) snapshots in
//!   both modes (the committed golden baselines also run in event mode, so
//!   the suite double-covers the fast path);
//! - a fault-injected run (pinned seed, DRAM drops + lane/SRAM flips on a
//!   degraded fabric) stays byte-identical too;
//! - a too-small `max_cycles` yields [`SimError::CycleBudgetExceeded`] at
//!   exactly the budget cycle — not a bogus [`SimError::Deadlock`];
//! - a genuinely deadlocked schedule reports the same deadlock cycle in
//!   both modes, and the report names the stall watchdog rather than the
//!   cycle budget.

use plasticine::arch::{FaultMap, FaultSpec, PlasticineParams, Topology};
use plasticine::compiler::{compile, compile_degraded, CompileOptions};
use plasticine::dram::DramConfig;
use plasticine::ppir::*;
use plasticine::sim::{simulate, SimError, SimOptions, StepMode};
use plasticine::workloads::{all, Bench, Scale};

fn snapshot(bench: &Bench, opts: &SimOptions) -> String {
    let params = PlasticineParams::paper_final();
    let out = compile(&bench.program, &params).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let r = simulate(&bench.program, &out, &mut m, opts)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    r.stats_json().pretty()
}

/// Every workload: cycles, activity, DRAM/coalescing statistics, and the
/// per-unit busy/ctrl/mem/idle breakdown are byte-identical between event
/// and cycle stepping.
#[test]
fn event_and_cycle_stepping_agree_on_all_workloads() {
    for bench in all(Scale(1)) {
        let event = snapshot(
            &bench,
            &SimOptions {
                step: StepMode::Event,
                ..SimOptions::default()
            },
        );
        let cycle = snapshot(
            &bench,
            &SimOptions {
                step: StepMode::Cycle,
                ..SimOptions::default()
            },
        );
        assert_eq!(event, cycle, "{}: step modes diverge", bench.name);
    }
}

/// Fault injection draws from a seeded RNG whenever a DRAM response
/// arrives or a vector beat issues; skipping cycles must not perturb the
/// draw sequence. One full fault-injected workload sweep, both modes.
#[test]
fn step_modes_agree_under_fault_injection() {
    let params = PlasticineParams::paper_final();
    let spec: FaultSpec = "pcu=6,pmu=6,links=5,lane=0.001,sram=0.001,drop=0.01,seed=42"
        .parse()
        .unwrap();
    let faults = FaultMap::sample(
        &Topology::new(&params),
        &spec,
        DramConfig::default().channels,
    );
    let copts = CompileOptions {
        faults: faults.clone(),
        ..CompileOptions::new()
    };
    for bench in all(Scale(1)) {
        let (out, prog, _) = compile_degraded(&bench.program, &params, &copts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let run = |step: StepMode| {
            let mut m = Machine::new(&prog);
            bench.load(&mut m);
            let sopts = SimOptions {
                faults: faults.clone(),
                step,
                ..SimOptions::default()
            };
            let r = simulate(&prog, &out, &mut m, &sopts)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            r.stats_json().pretty()
        };
        assert_eq!(
            run(StepMode::Event),
            run(StepMode::Cycle),
            "{}: step modes diverge under fault injection",
            bench.name
        );
    }
}

/// A long-running fold: makes steady progress, never deadlocks, but cannot
/// finish inside a tiny budget.
fn slow_program() -> Program {
    let mut b = ProgramBuilder::new("slow");
    let acc = b.reg("acc", DType::I32);
    let i = b.counter(0, 1_000_000, 1, 1);
    let mut one = Func::new("one");
    let o = one.konst(Elem::I32(1));
    one.set_outputs(vec![o]);
    let one = b.func(one);
    let fold = b.inner(
        "f",
        vec![i],
        InnerOp::Fold(FoldPipe {
            map: one,
            combine: vec![BinOp::Add],
            init: vec![FoldInit::Const(Elem::I32(0))],
            out_regs: vec![Some(acc)],
            writes: vec![],
        }),
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![fold]);
    b.finish(root).unwrap()
}

/// Regression for the error-classification bug: a run that overruns
/// `max_cycles` while still making progress used to fall into the deadlock
/// branch and exit as a spurious `Deadlock`. It must now report
/// `CycleBudgetExceeded` at exactly the budget cycle — in both step modes.
#[test]
fn tiny_cycle_budget_is_not_a_deadlock() {
    let p = slow_program();
    let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
    for step in [StepMode::Event, StepMode::Cycle] {
        let mut m = Machine::new(&p);
        let opts = SimOptions {
            max_cycles: 250,
            step,
            ..SimOptions::default()
        };
        match simulate(&p, &out, &mut m, &opts) {
            Err(SimError::CycleBudgetExceeded { cycle, budget }) => {
                assert_eq!(cycle, 250, "{step:?}");
                assert_eq!(budget, 250, "{step:?}");
            }
            other => panic!("{step:?}: expected CycleBudgetExceeded, got {other:?}"),
        }
    }
}

/// A two-stage pipeline that deadlocks when inter-stage credits are
/// withheld (`credit_cap = 0`): `ld` awaits a credit from `sq`, `sq`
/// awaits a token from `ld`.
fn pipelined_program() -> Program {
    let tiles = 4usize;
    let tile = 64usize;
    let mut b = ProgramBuilder::new("credit_test");
    let d_in = b.dram("in", DType::F32, tiles * tile);
    let d_out = b.dram("out", DType::F32, tiles * tile);
    let s_in = b.sram("t_in", DType::F32, &[tile]);
    let s_out = b.sram("t_out", DType::F32, &[tile]);
    let t = b.counter(0, tiles as i64, 1, 1);
    let mut basef = Func::new("base");
    let tv = basef.index(t.index);
    let tl = basef.konst(Elem::I32(tile as i32));
    let off = basef.binary(BinOp::Mul, tv, tl);
    basef.set_outputs(vec![off]);
    let basef = b.func(basef);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_in,
        }),
    );
    let i = b.counter(0, tile as i64, 1, 16);
    let mut body = Func::new("sq");
    let iv = body.index(i.index);
    let v = body.load(s_in, vec![iv]);
    let sq = body.binary(BinOp::Mul, v, v);
    body.set_outputs(vec![sq]);
    let body = b.func(body);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "sq",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_out,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_out,
        }),
    );
    let root = b.outer("tiles", Schedule::Pipelined, vec![t], vec![ld, mp, st]);
    b.finish(root).unwrap()
}

/// A genuine stall (zero-credit pipelined dependences) is still reported as
/// a deadlock, at the same cycle with the same diagnosis in both modes, and
/// the report carries the watchdog parameters that fired it.
#[test]
fn deadlock_detection_agrees_between_step_modes() {
    let p = pipelined_program();
    let out = compile(&p, &PlasticineParams::paper_final()).unwrap();
    let run = |step: StepMode| {
        let mut m = Machine::new(&p);
        let opts = SimOptions {
            credit_cap: Some(0),
            stall_limit: 2_000,
            step,
            ..SimOptions::default()
        };
        match simulate(&p, &out, &mut m, &opts) {
            Err(SimError::Deadlock(report)) => *report,
            other => panic!("{step:?}: expected deadlock, got {other:?}"),
        }
    };
    let event = run(StepMode::Event);
    let cycle = run(StepMode::Cycle);
    assert_eq!(event.cycle, cycle.cycle, "deadlock cycle diverges");
    assert_eq!(event.last_progress, cycle.last_progress);
    assert_eq!(event.stall_limit, 2_000);
    assert_eq!(event.to_string(), cycle.to_string());
    assert!(
        !event.cycle_chain.is_empty(),
        "under-credited pipeline should have a wait-for cycle:\n{event}"
    );
}
