//! Fault-injection robustness suite.
//!
//! Covers the degraded-fabric contract end to end:
//! - **No panics**: any fault map with up to 10% of PCUs/PMUs faulted makes
//!   compilation either succeed or return a typed
//!   [`CompileError::InsufficientFabric`] — never panic.
//! - **Golden equivalence**: a run with an explicit `FaultMap::default()`
//!   (fault-free) reproduces the committed golden stats byte-for-byte — the
//!   fault machinery must be invisible when disabled.
//! - **Acceptance**: all Table 4 workloads compile, run, and verify on a
//!   fabric with 10% of PCUs/PMUs and 5 switch links dead (pinned seed),
//!   with recovery activity visible in the stats when transients are on.
//! - **Deadlock diagnosis**: an under-credited program deadlocks with a
//!   report naming the exact blocked units, the held/awaited resources,
//!   and the wait-for cycle.

use plasticine::arch::{FaultMap, FaultSpec, PlasticineParams, Topology};
use plasticine::compiler::{compile_degraded, compile_with, CompileError, CompileOptions};
use plasticine::dram::DramConfig;
use plasticine::json::Json;
use plasticine::ppir::*;
use plasticine::sim::{simulate, SimError, SimOptions, WaitCause};
use plasticine::workloads::{all, Scale};
use proptest::prelude::*;
use std::path::PathBuf;

fn sample(spec: &FaultSpec, params: &PlasticineParams) -> FaultMap {
    FaultMap::sample(&Topology::new(params), spec, DramConfig::default().channels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ≤10% of each unit class faulted (64 PCUs / 64 PMUs → up to 6 each,
    /// plus dead links, banks, and a DRAM channel): compilation of every
    /// workload either succeeds or reports `InsufficientFabric` — no panic,
    /// no other error class.
    #[test]
    fn degraded_compile_never_panics(
        pcus in 0usize..=6,
        pmus in 0usize..=6,
        links in 0usize..=8,
        banks in 0usize..=8,
        channels in 0usize..=1,
        seed in 0u64..1_000_000,
    ) {
        let params = PlasticineParams::paper_final();
        let spec = FaultSpec { pcus, pmus, links, banks, channels, seed, ..FaultSpec::default() };
        let faults = sample(&spec, &params);
        let opts = CompileOptions { faults, ..CompileOptions::new() };
        for bench in all(Scale(1)) {
            match compile_with(&bench.program, &params, &opts) {
                Ok(_) | Err(CompileError::InsufficientFabric { .. }) => {}
                Err(e) => prop_assert!(false, "{}: unexpected error class: {e}", bench.name),
            }
        }
    }
}

/// A fault-free run with an *explicit* default fault map must reproduce the
/// committed golden stats byte-for-byte: enabling the fault machinery with
/// all rates at zero may not perturb timing or counters.
#[test]
fn default_fault_map_matches_golden_stats() {
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden");
    let params = PlasticineParams::paper_final();
    let opts = SimOptions {
        faults: FaultMap::default(),
        ..SimOptions::default()
    };
    for bench in all(Scale(1)) {
        let out = compile_with(&bench.program, &params, &CompileOptions::new())
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let r = simulate(&bench.program, &out, &mut m, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let mut stats = r.stats_json();
        if let Json::Obj(pairs) = &mut stats {
            pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
        }
        let path = golden.join(format!("{}.json", bench.name.to_ascii_lowercase()));
        let want =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            want,
            stats.pretty(),
            "{}: fault-free run with explicit FaultMap::default() drifted from golden",
            bench.name
        );
    }
}

/// The issue's acceptance bar: all workloads compile (degrading
/// parallelization where needed) and run to completion on a fabric with 10%
/// of PCUs/PMUs and 5 switch links faulted under a pinned seed, verify
/// functionally, and surface recovery work in the fault counters when
/// transient rates are on.
#[test]
fn all_workloads_survive_degraded_fabric() {
    let params = PlasticineParams::paper_final();
    let spec: FaultSpec = "pcu=6,pmu=6,links=5,lane=0.001,sram=0.001,drop=0.01,seed=42"
        .parse()
        .unwrap();
    let faults = sample(&spec, &params);
    assert_eq!(faults.dead_pcus.len(), 6);
    assert_eq!(faults.dead_pmus.len(), 6);
    assert_eq!(faults.dead_links.len(), 5);
    let copts = CompileOptions {
        faults: faults.clone(),
        ..CompileOptions::new()
    };
    let sopts = SimOptions {
        faults,
        ..SimOptions::default()
    };
    let mut total_recovered = 0u64;
    let mut any_degraded = false;
    for bench in all(Scale(1)) {
        let (out, prog, notes) = compile_degraded(&bench.program, &params, &copts)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        any_degraded |= !notes.is_empty();
        let mut m = Machine::new(&prog);
        bench.load(&mut m);
        let r =
            simulate(&prog, &out, &mut m, &sopts).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        bench
            .verify(&m)
            .unwrap_or_else(|e| panic!("{}: verification on degraded fabric: {e}", bench.name));
        let f = &r.faults;
        total_recovered += f.ecc_corrected + f.parity_replays + f.lane_replays + f.dram_retries;
        // Every injected drop must have been retried to completion.
        assert_eq!(f.dram_dropped, f.dram_retries, "{}", bench.name);
        // The recovery counters surface in the machine-readable stats.
        let stats = r.stats_json().pretty();
        assert!(stats.contains("\"faults\""), "{}", bench.name);
        assert!(stats.contains("\"recovery\""), "{}", bench.name);
    }
    assert!(
        total_recovered > 0,
        "transient rates were on but no recovery activity was recorded"
    );
    assert!(
        any_degraded,
        "expected at least one workload to need parallelization reduction \
         on a fabric with 6 PCUs dead"
    );
}

/// Builds a two-stage pipelined program (`ld` → `sq` → `st` under a
/// pipelined outer loop) that deadlocks when inter-stage credits are
/// withheld.
fn pipelined_program() -> Program {
    let tiles = 4usize;
    let tile = 64usize;
    let mut b = ProgramBuilder::new("credit_test");
    let d_in = b.dram("in", DType::F32, tiles * tile);
    let d_out = b.dram("out", DType::F32, tiles * tile);
    let s_in = b.sram("t_in", DType::F32, &[tile]);
    let s_out = b.sram("t_out", DType::F32, &[tile]);
    let t = b.counter(0, tiles as i64, 1, 1);
    let mut basef = Func::new("base");
    let tv = basef.index(t.index);
    let tl = basef.konst(Elem::I32(tile as i32));
    let off = basef.binary(BinOp::Mul, tv, tl);
    basef.set_outputs(vec![off]);
    let basef = b.func(basef);
    let ld = b.inner(
        "ld",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_in,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_in,
        }),
    );
    let i = b.counter(0, tile as i64, 1, 16);
    let mut body = Func::new("sq");
    let iv = body.index(i.index);
    let v = body.load(s_in, vec![iv]);
    let sq = body.binary(BinOp::Mul, v, v);
    body.set_outputs(vec![sq]);
    let body = b.func(body);
    let mut wa = Func::new("wa");
    let iv = wa.index(i.index);
    wa.set_outputs(vec![iv]);
    let wa = b.func(wa);
    let mp = b.inner(
        "sq",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_out,
                addr: wa,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: basef,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_out,
        }),
    );
    let root = b.outer("tiles", Schedule::Pipelined, vec![t], vec![ld, mp, st]);
    b.finish(root).unwrap()
}

/// Starving every inter-stage buffer of credits (`credit_cap = 0`)
/// deadlocks the pipeline; the diagnosis must name the exact waiting
/// units, what each holds and awaits, and the wait-for cycle between them.
#[test]
fn under_credited_pipeline_deadlock_is_diagnosed() {
    let p = pipelined_program();
    let params = PlasticineParams::paper_final();
    let out = compile_with(&p, &params, &CompileOptions::new()).unwrap();
    let mut m = Machine::new(&p);
    let opts = SimOptions {
        credit_cap: Some(0),
        stall_limit: 2_000,
        ..SimOptions::default()
    };
    let report = match simulate(&p, &out, &mut m, &opts) {
        Err(SimError::Deadlock(report)) => report,
        other => panic!("expected a deadlock, got {other:?}"),
    };

    // `ld` cannot start iteration 0 without a credit from its consumer
    // `sq`; `sq` cannot start without a token from `ld`: a two-unit cycle.
    let find = |name: &str| {
        report
            .blocked
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("unit `{name}` missing from deadlock report:\n{report}"))
    };
    let ld = find("ld");
    assert!(
        ld.waits.iter().any(
            |w| matches!(w, WaitCause::Credit { consumer_name, depth, .. }
                         if consumer_name == "sq" && *depth == 0)
        ),
        "`ld` must await a credit from `sq`:\n{report}"
    );
    let sq = find("sq");
    assert!(
        sq.waits
            .iter()
            .any(|w| matches!(w, WaitCause::Token { producer_name, .. } if producer_name == "ld")),
        "`sq` must await a token from `ld`:\n{report}"
    );

    // The wait-for cycle is closed and names both stages.
    assert!(
        !report.cycle_chain.is_empty(),
        "no wait-for cycle found:\n{report}"
    );
    assert_eq!(report.cycle_chain.first(), report.cycle_chain.last());
    assert!(report.cycle_chain.iter().any(|n| n == "ld"), "{report}");
    assert!(report.cycle_chain.iter().any(|n| n == "sq"), "{report}");

    // The human rendering carries the same diagnosis.
    let text = report.to_string();
    assert!(text.contains("wait-for cycle"), "{text}");
    assert!(text.contains("credit for iter"), "{text}");
    assert!(text.contains("token for iter"), "{text}");
}
