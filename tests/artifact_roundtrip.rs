//! Artifact round-trip suite: every Table 4 workload is compiled once,
//! serialized to a [`Bitstream`], decoded back, and simulated from the
//! decoded artifact. The stats snapshot must be byte-identical to both
//! the compile-and-run path and the committed golden baseline in
//! `tests/golden/` — the serialized configuration is a faithful,
//! compiler-free substitute for compilation.

use plasticine::arch::PlasticineParams;
use plasticine::compiler::{compile_degraded, Bitstream, CompileOptions};
use plasticine::json::Json;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{all, Bench, Scale};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Simulates a bench from an already-compiled output and renders the
/// stats snapshot exactly as `--stats-json` would.
fn snapshot(
    bench: &Bench,
    prog: &plasticine::ppir::Program,
    out: &plasticine::compiler::CompileOutput,
) -> String {
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let r = simulate(prog, out, &mut m, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    bench
        .verify(&m)
        .unwrap_or_else(|e| panic!("{}: verification: {e}", bench.name));
    let mut stats = r.stats_json();
    if let Json::Obj(pairs) = &mut stats {
        pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
    }
    stats.pretty()
}

#[test]
fn serialized_configs_reproduce_golden_stats_for_all_workloads() {
    let params = PlasticineParams::paper_final();
    let benches = all(Scale(1));
    assert_eq!(benches.len(), 13, "expected the 13 Table 4 workloads");
    for bench in &benches {
        let (out, prog, degraded) =
            compile_degraded(&bench.program, &params, &CompileOptions::new())
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));

        // Serialize, decode, and recover — the `compile --out` /
        // `run --config` path, minus the filesystem.
        let artifact = Bitstream::new(&bench.program, out, degraded);
        let decoded = Bitstream::decode(&artifact.encode())
            .unwrap_or_else(|e| panic!("{}: decode: {e}", bench.name));
        assert!(decoded.matches_program(&bench.program), "{}", bench.name);
        let recovered = decoded
            .recover_program(&bench.program)
            .unwrap_or_else(|e| panic!("{}: recover: {e}", bench.name));
        assert_eq!(recovered, prog, "{}: recovered program drifted", bench.name);

        // The artifact path and the direct path agree with each other and
        // with the committed baseline, byte for byte.
        let from_artifact = snapshot(bench, &recovered, &decoded.output);
        let direct = snapshot(bench, &prog, &artifact.output);
        assert_eq!(
            from_artifact, direct,
            "{}: artifact-path stats differ from direct compile",
            bench.name
        );
        let path = golden_dir().join(format!("{}.json", bench.name.to_ascii_lowercase()));
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing baseline {}: {e}", bench.name, path.display()));
        assert_eq!(
            from_artifact, want,
            "{}: artifact-path stats differ from golden baseline",
            bench.name
        );
    }
}

#[test]
fn recompiling_yields_an_identical_artifact() {
    // Compile-once means the artifact is a stable identity: compiling the
    // same program twice in the same process (different hasher seeds in
    // any internal `HashMap`s) must produce byte-identical encodings.
    let params = PlasticineParams::paper_final();
    for bench in all(Scale(1)).iter().take(3) {
        let (a, _, da) = compile_degraded(&bench.program, &params, &CompileOptions::new()).unwrap();
        let (b, _, db) = compile_degraded(&bench.program, &params, &CompileOptions::new()).unwrap();
        let ba = Bitstream::new(&bench.program, a, da);
        let bb = Bitstream::new(&bench.program, b, db);
        assert_eq!(ba.content_hash, bb.content_hash, "{}", bench.name);
        assert_eq!(ba.encode(), bb.encode(), "{}", bench.name);
    }
}
