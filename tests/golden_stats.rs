//! Golden-stats regression suite: every Table 4 workload is simulated at
//! `Scale(1)` and its [`SimResult::stats_json`] snapshot — cycles, activity
//! counters, DRAM statistics, and the per-unit stall breakdown — is
//! compared byte-for-byte against a committed baseline in `tests/golden/`.
//!
//! Any timing change, however small (a 1% cycle drift, one extra DRAM
//! activate, a shifted stall attribution), fails the suite. When a change
//! is intentional, regenerate the baselines and review the diff:
//!
//! ```sh
//! PLASTICINE_BLESS=1 cargo test --test golden_stats
//! git diff tests/golden/
//! ```

use plasticine::arch::PlasticineParams;
use plasticine::compiler::compile;
use plasticine::json::Json;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{all, Bench, Scale};
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs a bench end to end and renders its stats snapshot.
fn snapshot(bench: &Bench, params: &PlasticineParams) -> String {
    let out = compile(&bench.program, params).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    bench
        .verify(&m)
        .unwrap_or_else(|e| panic!("{}: verification: {e}", bench.name));
    let mut stats = r.stats_json();
    if let Json::Obj(pairs) = &mut stats {
        pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
    }
    stats.pretty()
}

/// First line where two snapshots disagree, for a readable failure message.
fn first_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!(
                "line {}: baseline `{}` vs got `{}`",
                i + 1,
                w.trim(),
                g.trim()
            );
        }
    }
    format!(
        "baseline has {} lines, got {}",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn all_workloads_match_golden_stats() {
    let params = PlasticineParams::paper_final();
    let bless = std::env::var("PLASTICINE_BLESS").is_ok();
    let dir = golden_dir();
    if bless {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let benches = all(Scale(1));
    assert_eq!(benches.len(), 13, "expected the 13 Table 4 workloads");
    let mut failures = Vec::new();
    for bench in &benches {
        let got = snapshot(bench, &params);
        let path = dir.join(format!("{}.json", bench.name.to_ascii_lowercase()));
        if bless {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!("{}: {}", bench.name, first_diff(&want, &got))),
            Err(_) => failures.push(format!(
                "{}: missing baseline {} (run `PLASTICINE_BLESS=1 cargo test --test golden_stats`)",
                bench.name,
                path.display()
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "golden stats drifted; if intentional, bless and review the diff:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn golden_comparison_detects_one_percent_cycle_drift() {
    // The suite compares snapshots byte-for-byte, so even the smallest
    // meaningful perturbation — cycles off by 1% — must change the text.
    let path = golden_dir().join("gemm.json");
    let text = std::fs::read_to_string(&path)
        .expect("gemm baseline present (bless with PLASTICINE_BLESS=1)");
    let mut j = Json::parse(&text).expect("baseline parses");
    let Json::Obj(pairs) = &mut j else {
        panic!("baseline is an object");
    };
    let mut perturbed = false;
    for (k, v) in pairs.iter_mut() {
        if k == "cycles" {
            let Json::Int(c) = v else {
                panic!("cycles is an int")
            };
            *c += (*c / 100).max(1);
            perturbed = true;
        }
    }
    assert!(perturbed, "baseline has a cycles field");
    assert_ne!(j.pretty(), text, "1% cycle drift must not survive the diff");
}

#[test]
fn golden_baselines_are_valid_json_with_stall_invariant() {
    // Baselines must parse, and every recorded unit breakdown must sum to
    // the recorded cycle count — the invariant the attribution guarantees.
    let dir = golden_dir();
    let mut checked = 0;
    for bench in all(Scale(1)) {
        let path = dir.join(format!("{}.json", bench.name.to_ascii_lowercase()));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // covered by the main test's missing-baseline failure
        };
        let j = Json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let Json::Obj(pairs) = &j else {
            panic!("{}: not an object", path.display())
        };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let Some(Json::Int(cycles)) = get("cycles") else {
            panic!("{}: no cycles", path.display())
        };
        let Some(Json::Arr(units)) = get("units") else {
            panic!("{}: no units", path.display())
        };
        for u in units {
            let Json::Obj(fields) = u else {
                panic!("{}: unit not an object", path.display())
            };
            let f = |key: &str| -> i64 {
                match fields.iter().find(|(k, _)| k == key) {
                    Some((_, Json::Int(v))) => *v,
                    _ => panic!("{}: unit missing {key}", path.display()),
                }
            };
            assert_eq!(
                f("busy") + f("ctrl_stall") + f("mem_stall") + f("idle"),
                *cycles,
                "{}: unit {} breakdown does not sum to cycles",
                path.display(),
                f("unit"),
            );
        }
        checked += 1;
    }
    assert!(checked > 0, "no baselines found; bless first");
}
