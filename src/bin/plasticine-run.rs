//! `plasticine-run` — command-line driver for the full stack.
//!
//! ```sh
//! plasticine-run list
//! plasticine-run run GEMM --scale 4
//! plasticine-run compile BFS --bitstream bfs.json
//! ```

use plasticine::arch::{MachineConfig, PlasticineParams};
use plasticine::compiler::compile;
use plasticine::fpga::FpgaModel;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{all, Bench, Scale};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  plasticine-run list\n  plasticine-run run <benchmark|all> [--scale N]\n  plasticine-run compile <benchmark> [--scale N] [--bitstream FILE]"
    );
    ExitCode::FAILURE
}

fn find_bench(name: &str, scale: Scale) -> Option<Bench> {
    all(scale).into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

fn parse_scale(args: &[String]) -> Scale {
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<usize>().ok())
        .map(Scale)
        .unwrap_or(Scale(1))
}

fn run_one(bench: &Bench, params: &PlasticineParams) -> Result<(), String> {
    let out = compile(&bench.program, params).map_err(|e| e.to_string())?;
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())
        .map_err(|e| e.to_string())?;
    bench.verify(&m)?;
    let (pcu, pmu, ag) = out.config.utilization();
    let power = PowerModel::new().estimate(&r, &out.config);
    let fpga = FpgaModel::new().estimate(&bench.fpga);
    let speedup = fpga.seconds / r.seconds(params.clock_ghz);
    println!(
        "{:<14} {:>10} cycles  util pcu/pmu/ag {:>4.0}%/{:>4.0}%/{:>4.0}%  {:>5.1} W  vs FPGA {:>6.1}x  [verified]",
        bench.name,
        r.cycles,
        100.0 * pcu,
        100.0 * pmu,
        100.0 * ag,
        power.total_w,
        speedup,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = PlasticineParams::paper_final();
    match args.first().map(String::as_str) {
        Some("list") => {
            for b in all(Scale(1)) {
                println!("{}", b.name);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let scale = parse_scale(&args);
            let benches = if name == "all" {
                all(scale)
            } else {
                match find_bench(name, scale) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            for b in &benches {
                if let Err(e) = run_one(b, &params) {
                    eprintln!("{}: {e}", b.name);
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let scale = parse_scale(&args);
            let Some(bench) = find_bench(name, scale) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            let out = match compile(&bench.program, &params) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{}: {e}", bench.name);
                    return ExitCode::FAILURE;
                }
            };
            let cfg: &MachineConfig = &out.config;
            println!(
                "{}: {} PCUs, {} PMUs, {} AGs, {} links",
                bench.name,
                cfg.usage.pcus,
                cfg.usage.pmus,
                cfg.usage.ags,
                cfg.links.len()
            );
            if let Some(pos) = args.iter().position(|a| a == "--bitstream") {
                let Some(path) = args.get(pos + 1) else {
                    return usage();
                };
                if let Err(e) = cfg.save(std::path::Path::new(path)) {
                    eprintln!("saving bitstream: {e}");
                    return ExitCode::FAILURE;
                }
                println!("bitstream written to {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
