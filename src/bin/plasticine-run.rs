//! `plasticine-run` — command-line driver for the full stack.
//!
//! ```sh
//! plasticine-run list
//! plasticine-run run GEMM --scale 4
//! plasticine-run run GEMM --trace gemm.json --stats-json gemm-stats.json
//! plasticine-run run all --faults pcu=6,pmu=6,links=5,seed=42
//! plasticine-run compile BFS --bitstream bfs.json
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (bad data, I/O, verification),
//! 2 usage error, 3 compilation failure (including insufficient degraded
//! fabric), 4 deadlock, 5 transient-fault exhaustion, 6 cycle budget
//! exceeded.

use plasticine::arch::{FaultMap, FaultSpec, MachineConfig, PlasticineParams, Topology};
use plasticine::compiler::{compile_degraded, CompileOptions};
use plasticine::fpga::FpgaModel;
use plasticine::json::Json;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::sim::{
    simulate, simulate_traced, SimError, SimOptions, SimResult, StepMode, UnitKind, UnitStats,
};
use plasticine::workloads::{all, Bench, Scale};
use std::process::ExitCode;

const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_DEADLOCK: u8 = 4;
const EXIT_FAULT_EXHAUSTION: u8 = 5;
const EXIT_CYCLE_BUDGET: u8 = 6;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  plasticine-run list\n  plasticine-run run <benchmark|all> [--scale N] [--trace FILE] [--stats-json FILE] [--units] [--faults SPEC] [--step-mode MODE]\n  plasticine-run compile <benchmark> [--scale N] [--faults SPEC] [--bitstream FILE]\n\nrun options:\n  --trace FILE       write a Chrome trace-viewer JSON (chrome://tracing, ui.perfetto.dev)\n  --stats-json FILE  write a machine-readable stats snapshot\n  --units            print the per-unit stall breakdown table\n  --faults SPEC      inject faults, e.g. pcu=3,pmu=2,links=5,banks=4,chan=1,seed=42\n                     (hard faults; transient rates: lane=P,sram=P,drop=P,retries=N)\n  --step-mode MODE   `event` (default: skip quiescent cycles) or `cycle`\n                     (step every cycle); statistics are bit-identical\n(with `run all`, the benchmark name is inserted into each output file name)\n\nexit codes: 0 ok, 1 runtime, 2 usage, 3 compile, 4 deadlock, 5 fault exhaustion,\n            6 cycle budget exceeded"
    );
    ExitCode::from(EXIT_USAGE)
}

fn find_bench(name: &str, scale: Scale) -> Option<Bench> {
    all(scale)
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Parsed command-line flags (strict: unknown flags and malformed values
/// are usage errors).
#[derive(Default)]
struct Flags {
    scale: usize,
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: Option<FaultSpec>,
    bitstream: Option<String>,
    step: StepMode,
}

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut f = Flags {
        scale: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if !allowed.contains(&a) {
            return Err(format!("unknown option `{a}`"));
        }
        if a == "--units" {
            f.units = true;
            i += 1;
            continue;
        }
        let v = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => return Err(format!("{a} requires a value")),
        };
        match a {
            "--scale" => {
                f.scale = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--scale requires a positive integer, got `{v}`"))?;
            }
            "--trace" => f.trace = Some(v),
            "--stats-json" => f.stats = Some(v),
            "--bitstream" => f.bitstream = Some(v),
            "--faults" => {
                f.faults = Some(
                    v.parse::<FaultSpec>()
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--step-mode" => {
                f.step = match v.as_str() {
                    "event" => StepMode::Event,
                    "cycle" => StepMode::Cycle,
                    _ => {
                        return Err(format!(
                            "--step-mode requires `event` or `cycle`, got `{v}`"
                        ))
                    }
                };
            }
            _ => unreachable!("flag list and match arms agree"),
        }
        i += 2;
    }
    Ok(f)
}

/// `trace.json` + `GEMM` → `trace-gemm.json` (for `run all` output files).
fn per_bench_path(path: &str, bench: &str) -> String {
    let bench = bench.to_ascii_lowercase();
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{bench}.{ext}"),
        None => format!("{path}-{bench}"),
    }
}

/// Prints the cycle breakdown: one aggregate row per unit kind, and
/// per-unit rows when `per_unit` is set. The `recov` column is the
/// fault-recovery overlay (cycles re-doing squashed work), not a fifth
/// class.
fn print_units(units: &UnitStats, per_unit: bool) {
    let pct = |v: u64, t: u64| {
        if t == 0 {
            0.0
        } else {
            100.0 * v as f64 / t as f64
        }
    };
    println!(
        "  {:<18} {:>3} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "unit", "n", "busy%", "ctrl%", "mem%", "idle%", "recov"
    );
    for kind in [UnitKind::Pcu, UnitKind::Pmu, UnitKind::Ag] {
        let n = units.units.iter().filter(|u| u.kind == kind).count();
        if n == 0 {
            continue;
        }
        let a = units.aggregate(kind);
        let t = a.total();
        println!(
            "  {:<18} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
            kind.as_str(),
            n,
            pct(a.busy, t),
            pct(a.ctrl_stall, t),
            pct(a.mem_stall, t),
            pct(a.idle, t),
            a.recovery,
        );
    }
    if per_unit {
        for u in &units.units {
            let c = &u.cycles;
            let t = c.total();
            println!(
                "    {:<16} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
                u.label,
                u.kind.as_str(),
                pct(c.busy, t),
                pct(c.ctrl_stall, t),
                pct(c.mem_stall, t),
                pct(c.idle, t),
                c.recovery,
            );
        }
    }
}

struct RunConfig {
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: FaultMap,
    step: StepMode,
}

/// A failed run, carrying the process exit code it maps to.
struct RunFailure {
    code: u8,
    message: String,
}

impl RunFailure {
    fn other(message: String) -> RunFailure {
        RunFailure { code: 1, message }
    }

    fn from_sim(e: SimError) -> RunFailure {
        let code = match &e {
            SimError::Deadlock(_) => EXIT_DEADLOCK,
            SimError::FaultExhaustion { .. } => EXIT_FAULT_EXHAUSTION,
            SimError::CycleBudgetExceeded { .. } => EXIT_CYCLE_BUDGET,
            _ => 1,
        };
        RunFailure {
            code,
            message: e.to_string(),
        }
    }
}

fn run_one(bench: &Bench, params: &PlasticineParams, cfg: &RunConfig) -> Result<(), RunFailure> {
    let copts = CompileOptions {
        faults: cfg.faults.clone(),
        ..CompileOptions::new()
    };
    let (out, prog, degraded) =
        compile_degraded(&bench.program, params, &copts).map_err(|e| RunFailure {
            code: EXIT_COMPILE,
            message: e.to_string(),
        })?;
    for note in &degraded {
        println!("  degraded: {note}");
    }
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let opts = SimOptions {
        faults: cfg.faults.clone(),
        step: cfg.step,
        ..SimOptions::default()
    };
    let sim_res = if cfg.trace.is_some() {
        simulate_traced(&prog, &out, &mut m, &opts).map(|(r, t)| (r, Some(t)))
    } else {
        simulate(&prog, &out, &mut m, &opts).map(|r| (r, None))
    };
    let (r, trace): (SimResult, Option<_>) = match sim_res {
        Ok(x) => x,
        Err(SimError::Deadlock(report)) => {
            // The diagnosis embeds the trace up to the deadlock (with
            // instant markers on the blocked units): still write it out.
            if let (Some(path), Some(t)) = (&cfg.trace, &report.trace) {
                let json = t.chrome_trace(&prog);
                match std::fs::write(path, json.pretty()) {
                    Ok(()) => eprintln!("deadlock trace written to {path}"),
                    Err(e) => eprintln!("writing {path}: {e}"),
                }
            }
            return Err(RunFailure::from_sim(SimError::Deadlock(report)));
        }
        Err(e) => return Err(RunFailure::from_sim(e)),
    };
    bench.verify(&m).map_err(RunFailure::other)?;
    let (pcu, pmu, ag) = out.config.utilization();
    let power = PowerModel::new().estimate(&r, &out.config);
    let fpga = FpgaModel::new().estimate(&bench.fpga);
    let speedup = fpga.seconds / r.seconds(params.clock_ghz);
    println!(
        "{:<14} {:>10} cycles  util pcu/pmu/ag {:>4.0}%/{:>4.0}%/{:>4.0}%  {:>5.1} W  vs FPGA {:>6.1}x  [verified]",
        bench.name,
        r.cycles,
        100.0 * pcu,
        100.0 * pmu,
        100.0 * ag,
        power.total_w,
        speedup,
    );
    if cfg.faults.has_hard_faults() || cfg.faults.transient.any() {
        let f = &r.faults;
        println!(
            "  faults: {}  recovered: ecc={} parity={} lane={} drops={} retries={} (+{} cy backoff, {} recovery cy)",
            cfg.faults.summary(),
            f.ecc_corrected,
            f.parity_replays,
            f.lane_replays,
            f.dram_dropped,
            f.dram_retries,
            f.dram_retry_wait_cycles,
            f.recovery_cycles,
        );
    }
    if cfg.units {
        print_units(&r.units, true);
    }
    if let (Some(path), Some(trace)) = (&cfg.trace, &trace) {
        let json = trace.chrome_trace(&prog);
        std::fs::write(path, json.pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  trace ({} events) written to {path}", trace.events.len());
    }
    if let Some(path) = &cfg.stats {
        let mut stats = r.stats_json();
        if let Json::Obj(pairs) = &mut stats {
            pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
        }
        std::fs::write(path, stats.pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  stats written to {path}");
    }
    Ok(())
}

/// Materializes the fault map a spec describes for the current machine.
fn fault_map(spec: &Option<FaultSpec>, params: &PlasticineParams) -> FaultMap {
    match spec {
        Some(spec) => {
            let topo = Topology::new(params);
            let channels = plasticine::dram::DramConfig::default().channels;
            FaultMap::sample(&topo, spec, channels)
        }
        None => FaultMap::default(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = PlasticineParams::paper_final();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                eprintln!("`list` takes no arguments");
                return usage();
            }
            for b in all(Scale(1)) {
                println!("{}", b.name);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`run` requires a benchmark name before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[2..],
                &[
                    "--scale",
                    "--trace",
                    "--stats-json",
                    "--units",
                    "--faults",
                    "--step-mode",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let scale = Scale(flags.scale);
            let benches = if name == "all" {
                all(scale)
            } else {
                match find_bench(name, scale) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let many = benches.len() > 1;
            for b in &benches {
                let cfg = RunConfig {
                    trace: flags.trace.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    stats: flags.stats.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    units: flags.units,
                    faults: faults.clone(),
                    step: flags.step,
                };
                if let Err(e) = run_one(b, &params, &cfg) {
                    eprintln!("{}: {}", b.name, e.message);
                    return ExitCode::from(e.code);
                }
            }
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`compile` requires a benchmark name before options");
                return usage();
            }
            let flags = match parse_flags(&args[2..], &["--scale", "--faults", "--bitstream"]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let Some(bench) = find_bench(name, Scale(flags.scale)) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let copts = CompileOptions {
                faults,
                ..CompileOptions::new()
            };
            let out = match compile_degraded(&bench.program, &params, &copts) {
                Ok((o, _, degraded)) => {
                    for note in &degraded {
                        println!("  degraded: {note}");
                    }
                    o
                }
                Err(e) => {
                    eprintln!("{}: {e}", bench.name);
                    return ExitCode::from(EXIT_COMPILE);
                }
            };
            let cfg: &MachineConfig = &out.config;
            println!(
                "{}: {} PCUs, {} PMUs, {} AGs, {} links",
                bench.name,
                cfg.usage.pcus,
                cfg.usage.pmus,
                cfg.usage.ags,
                cfg.links.len()
            );
            if let Some(path) = &flags.bitstream {
                if let Err(e) = cfg.save(std::path::Path::new(path)) {
                    eprintln!("saving bitstream: {e}");
                    return ExitCode::FAILURE;
                }
                println!("bitstream written to {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
