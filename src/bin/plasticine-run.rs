//! `plasticine-run` — command-line driver for the full stack.
//!
//! ```sh
//! plasticine-run list
//! plasticine-run run GEMM --scale 4
//! plasticine-run run GEMM --trace gemm.json --stats-json gemm-stats.json
//! plasticine-run run all --faults pcu=6,pmu=6,links=5,seed=42
//! plasticine-run compile BFS --out bfs-cfg.json
//! plasticine-run run BFS --config bfs-cfg.json --stats-json bfs-stats.json
//! plasticine-run batch all --jobs 4 --stats-json stats.json
//! ```
//!
//! Exit codes are the [`ExitStatus`] contract: 0 success, 1 runtime
//! failure (bad data, I/O, verification), 2 usage error, 3 compilation
//! failure (including insufficient degraded fabric), 4 deadlock,
//! 5 transient-fault exhaustion, 6 cycle budget exceeded, 8 fabric
//! degraded by an online fault arrival (the exit leaves a resumable
//! auto-checkpoint when a checkpoint dir is set).

use plasticine::arch::{
    DseGrid, FaultMap, FaultSpec, FaultTimeline, FaultTimelineSpec, GridMix, MachineConfig,
    Partition, PartitionTable, PlasticineParams, Topology,
};
use plasticine::chaos::{self, SoakMode};
use plasticine::compiler::{compile_degraded, Bitstream, CompileCache, CompileOptions};
use plasticine::dse::{PointOutcome, SearchReport};
use plasticine::fpga::FpgaModel;
use plasticine::journal::{JobStatus, Journal, JournalEntry};
use plasticine::json::Json;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::service::{
    checkpoint_path, emit_checkpoint, env_lists_bench, jittered_backoff_ms, stats_with_bench,
    RequestDefaults, ServeOptions,
};
use plasticine::sim::{
    simulate, simulate_checkpointed, simulate_traced, Checkpoint, CheckpointPolicy, ExitStatus,
    MultiSim, SimError, SimOptions, SimResult, StepMode, TenantId, UnitKind, UnitStats,
};
use plasticine::workloads::{all, Bench, Scale};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  plasticine-run list\n  plasticine-run run <benchmark|all> [--scale N] [--config FILE] [--partition ROWS@Y0[/CH]] [--trace FILE] [--stats-json FILE] [--units] [--faults SPEC] [--step-mode MODE] [--threads N] [--max-cycles N] [--checkpoint-every N] [--checkpoint-dir DIR] [--checkpoint-keep N] [--resume FILE] [--fault-timeline SPEC] [--heal]\n  plasticine-run compile <benchmark> [--scale N] [--faults SPEC] [--partition ROWS@Y0[/CH]] [--out FILE] [--bitstream FILE]\n  plasticine-run multi <NAME=ROWS[@Y0][/CH]...> [--scale N] [--step-mode MODE] [--threads N] [--max-cycles N] [--quantum N] [--evict IDX] [--stats-json FILE]\n  plasticine-run batch <benchmark...|all> [--scale N] [--jobs N] [--threads N] [--stats-json FILE] [--faults SPEC] [--step-mode MODE] [--max-cycles N] [--timeout SECS] [--retries N] [--journal FILE] [--fail-fast] [--checkpoint-every N] [--checkpoint-dir DIR] [--checkpoint-keep N]\n  plasticine-run dse search <benchmark...|all> [--scale N] [--lanes L1,L2] [--stages S1,S2] [--mix M1,M2] [--mixes NAME1,NAME2] [--scratchpad-kb K1,K2] [--channels C1,C2] [--jobs N] [--threads N] [--step-mode MODE] [--max-cycles N] [--limit N] [--journal FILE] [--out FILE]\n  plasticine-run serve [--workers N] [--queue-depth N] [--deadline-ms N] [--socket PATH] [--retries N] [--scale N] [--threads N] [--faults SPEC] [--step-mode MODE] [--max-cycles N] [--checkpoint-every N] [--checkpoint-dir DIR] [--checkpoint-keep N]\n  plasticine-run chaos [benchmark...|all] [--seeds N] [--scale N] [--step-mode MODE] [--threads N] [--modes M1,M2] [--out FILE]\n\nrun options:\n  --config FILE      load a serialized artifact (`compile --out`) instead of compiling\n  --partition ROWS@Y0[/CH]  compile and run on a horizontal band: ROWS fabric\n                     rows starting at row Y0 owning CH DRAM channels\n                     (default 1); with --config, the flag must match the\n                     partition the artifact was compiled for (a mismatch\n                     is a usage error) and the simulated DRAM shrinks to\n                     the band's channel share, so the stats are\n                     byte-identical to the same tenant co-located under\n                     `multi`\n  --trace FILE       write a Chrome trace-viewer JSON (chrome://tracing, ui.perfetto.dev)\n  --stats-json FILE  write a machine-readable stats snapshot\n  --units            print the per-unit stall breakdown table\n  --faults SPEC      inject faults, e.g. pcu=3,pmu=2,links=5,banks=4,chan=1,seed=42\n                     (hard faults; transient rates: lane=P,sram=P,drop=P,retries=N)\n  --step-mode MODE   `event` (default: skip quiescent cycles) or `cycle`\n                     (step every cycle); statistics are bit-identical\n  --threads N        worker threads for the event kernel (default 1); results\n                     are byte-identical at any value — only wall-clock changes\n  --max-cycles N     cycle budget (default 500000000); exceeding it exits 6\n  --checkpoint-every N  write a checkpoint every N simulated cycles\n  --checkpoint-dir DIR  where checkpoints go (default `.`); enabling any\n                     checkpointing also auto-checkpoints on cycle-budget and\n                     deadlock failures, so those cycles can be resumed\n  --checkpoint-keep N  cycle-stamped auto-checkpoints retained per benchmark\n                     (default 3; older ones are pruned atomically — the\n                     fixed `<bench>.ckpt.json` slot always holds the newest)\n  --resume FILE      resume from a checkpoint instead of starting at cycle 0\n                     (stats are bit-identical to an uninterrupted run)\n  --fault-timeline SPEC  schedule online fault arrivals, e.g.\n                     units=2,links=1,banks=1,esc=1,horizon=4096,seed=7,band=4@0,detect=8\n                     (sampled deterministically; an arrival that impacts the\n                     running program exits 8 `fabric degraded` with a\n                     resumable auto-checkpoint when a checkpoint dir is set)\n  --heal             self-heal through degraded exits instead of exiting 8:\n                     absorb the arrivals, relocate to the lowest healthy\n                     pattern-equivalent band, resume the degrade checkpoint\n                     there; final stats are byte-identical to resuming the\n                     checkpoint on that band manually (requires --partition;\n                     incompatible with --config/--trace/--resume and the\n                     checkpointing flags)\n  (checkpointing and --trace are mutually exclusive)\n(with `run all`, the benchmark name is inserted into each output file name)\n\ncompile options:\n  --out FILE         write the full compile artifact (config + placement +\n                     analysis, versioned and content-hashed) for `run --config`\n  --bitstream FILE   write only the machine configuration\n  --partition ROWS@Y0[/CH]  confine placement and routing to the band; the\n                     partition is recorded in the artifact, and the same\n                     geometry at a different Y0 yields a relocated,\n                     hash-distinct bitstream\n\nmulti options:\n  co-locate several programs on one chip, each on its own disjoint band\n  with its own DRAM-channel share, under deterministic weighted\n  round-robin channel arbitration; every tenant's stats are byte-identical\n  to running it alone via `run --partition` on the same band\n  NAME=ROWS[/CH]     tenant spec: bench NAME on a best-fit band of ROWS rows\n                     owning CH channels (default 1); NAME=ROWS@Y0[/CH] pins\n                     the band at row Y0 instead\n  --quantum N        cycles per arbitration credit: each round a tenant\n                     advances CH x N cycles (default 2048); stats are\n                     quantum-independent\n  --evict IDX        after one round, evict tenant IDX (checkpoint at its\n                     quantum boundary, free its band) and resume it as a new\n                     tenant — final stats match an uninterrupted run\n  --stats-json FILE  per-tenant stats snapshots (bench name inserted into\n                     the file name)\n\nbatch options:\n  --jobs N           concurrent jobs (default: available cores / --threads,\n                     so jobs x threads covers the machine exactly once)\n  --threads N        simulator threads per job (default 1); byte-identical\n  --timeout SECS     per-job wall-clock limit; a job past it is abandoned and\n                     reported as timed out while the rest of the batch continues\n  --retries N        re-run a job that fails with transient-fault exhaustion up\n                     to N extra times (exponential backoff between attempts)\n  --journal FILE     append-style progress journal; a re-invoked batch with the\n                     same journal skips completed jobs and, with a checkpoint\n                     dir, resumes interrupted ones mid-run\n  --fail-fast        stop scheduling new jobs after the first failure (the\n                     default runs everything and prints a failure report)\n  (workers share one compile cache; output order is deterministic)\n\ndse search options:\n  a resumable multi-objective search over the PlasticineParams design\n  space: each grid point (cross product of the axis lists below) is\n  compiled + simulated against the chosen workload mix and priced with\n  the area/power models; the output is the Pareto frontier over\n  perf / area / perf-per-W (dominated points pruned incrementally)\n  --lanes L1,L2      candidate PCU SIMD lane counts (default 8,16)\n  --stages S1,S2     candidate PCU pipeline stage counts (default 5,6)\n  --mix M1,M2        candidate grid mixes: `checkerboard`/`cb` or\n                     `pmuheavy`/`ph` (default checkerboard)\n  --mixes NAME1,NAME2  score named workload mixes (`dense`, `sparse`, `ml`)\n                     in the same pass: every point is still compiled and\n                     simulated once per workload, but each mix re-weights\n                     the shared measurements into its own objectives and\n                     Pareto frontier, and the report adds the\n                     robust-across-mixes intersection\n  --scratchpad-kb K1,K2  candidate per-PMU scratchpad KiB (default 128,256)\n  --channels C1,C2   candidate DRAM channel counts (default 2,4)\n  --limit N          evaluate at most N new points this invocation; the\n                     rest are reported `not run` and picked up when the\n                     same --journal is passed again\n  --journal FILE     progress journal (shared format with `batch`); done\n                     points are restored with their exact measured\n                     objectives, so a resumed search emits a frontier\n                     byte-identical to an uninterrupted one\n  --out FILE         write the cumulative report (all points + frontier)\n                     as JSON; deterministic across worker counts\n  points the design cannot run (invalid params, does not fit even after\n  degradation, deadlock, cycle budget) are typed `infeasible` skips, not\n  failures; the exit code reflects only real failures\n\nserve options:\n  a long-lived daemon: line-delimited JSON requests on stdin (responses on\n  stdout) and, with --socket, on a Unix socket shared by many clients;\n  ops: compile, run, batch, stats, shutdown, plus the multi-tenant\n  scheduler ops submit (queue a program onto a free partition), tenants\n  (list tenant states), and evict (checkpoint + requeue a resident)\n  (see DESIGN.md sections 13 and 15)\n  --workers N        worker threads executing requests (default: cores)\n  --queue-depth N    admission-queue bound (default: 2x workers); requests\n                     beyond it are shed with a typed `overloaded` response\n  --deadline-ms N    per-request wall-clock deadline measured from admission\n                     (default 60000); a request past it is abandoned with a\n                     typed error while the daemon keeps serving\n  --retries N        re-run a request failing with fault exhaustion up to N\n                     extra times (jittered backoff), then degrade its\n                     parallelization until it fits the surviving fabric\n  (the remaining flags set per-request defaults; response `status` strings\n  mirror the exit codes below, plus service-only `overloaded` and\n  `shutting_down` with code 7)\n\nchaos options:\n  a deterministic chaos soak: every pinned seed replays a random fault\n  timeline against one workload on one surface (solo self-healing run,\n  two co-resident `multi` tenants, or a live fabric scheduler) and checks\n  the robustness invariants — no panics, typed statuses only, healed\n  stats byte-identical to a manual resume, co-resident isolation intact\n  (exit 0 only when every iteration holds them)\n  --seeds N          iterations; seeds are pinned 1..=N (default 20)\n  --modes M1,M2      surfaces to rotate through: solo, multi, sched\n                     (default all three)\n  --out FILE         write the machine-readable soak report as JSON\n\nexit codes: 0 ok, 1 runtime, 2 usage, 3 compile, 4 deadlock, 5 fault exhaustion,\n            6 cycle budget exceeded, 8 fabric degraded"
    );
    ExitStatus::Usage.into()
}

fn find_bench(name: &str, scale: Scale) -> Option<Bench> {
    all(scale)
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Parsed command-line flags (strict: unknown flags and malformed values
/// are usage errors).
#[derive(Default)]
struct Flags {
    scale: usize,
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: Option<FaultSpec>,
    bitstream: Option<String>,
    out: Option<String>,
    config: Option<String>,
    jobs: usize,
    threads: usize,
    step: StepMode,
    max_cycles: Option<u64>,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    timeout: Option<u64>,
    retries: u32,
    journal: Option<String>,
    fail_fast: bool,
    workers: usize,
    queue_depth: usize,
    deadline_ms: Option<u64>,
    socket: Option<String>,
    lanes: Option<Vec<usize>>,
    stages: Option<Vec<usize>>,
    mixes: Option<Vec<GridMix>>,
    scratchpad_kb: Option<Vec<usize>>,
    channels: Option<Vec<usize>>,
    limit: Option<usize>,
    partition: Option<Partition>,
    workload_mixes: Option<Vec<String>>,
    quantum: Option<u64>,
    evict: Option<usize>,
    fault_timeline: Option<FaultTimelineSpec>,
    heal: bool,
    checkpoint_keep: Option<usize>,
    seeds: Option<u64>,
    modes: Option<Vec<SoakMode>>,
}

/// `--lanes 8,16` → `[8, 16]`; every element must be a positive integer.
fn parse_usize_list(v: &str, flag: &str) -> Result<Vec<usize>, String> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    format!(
                        "{flag} requires a comma-separated list of positive integers, got `{v}`"
                    )
                })
        })
        .collect()
}

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut f = Flags {
        scale: 1,
        threads: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if !allowed.contains(&a) {
            return Err(format!("unknown option `{a}`"));
        }
        if a == "--units" || a == "--fail-fast" || a == "--heal" {
            f.units |= a == "--units";
            f.fail_fast |= a == "--fail-fast";
            f.heal |= a == "--heal";
            i += 1;
            continue;
        }
        let v = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => return Err(format!("{a} requires a value")),
        };
        match a {
            "--scale" => {
                f.scale = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--scale requires a positive integer, got `{v}`"))?;
            }
            "--jobs" => {
                f.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs requires a positive integer, got `{v}`"))?;
            }
            "--threads" => {
                // `0` threads cannot run anything and an overflowing value
                // fails the usize parse; both are usage errors, not clamps.
                f.threads =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--threads requires a positive integer, got `{v}`")
                    })?;
            }
            "--max-cycles" => {
                f.max_cycles =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--max-cycles requires a positive integer, got `{v}`")
                    })?);
            }
            "--checkpoint-every" => {
                // `0` would checkpoint every cycle boundary forever and a
                // negative or overflowing value fails the u64 parse; all
                // are usage errors, not silent clamps.
                f.checkpoint_every =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--checkpoint-every requires a positive integer, got `{v}`")
                    })?);
            }
            "--timeout" => {
                f.timeout = Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--timeout requires a positive number of seconds, got `{v}`")
                })?);
            }
            "--retries" => {
                f.retries = v
                    .parse::<u32>()
                    .map_err(|_| format!("--retries requires a non-negative integer, got `{v}`"))?;
            }
            "--workers" => {
                f.workers =
                    v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--workers requires a positive integer, got `{v}`")
                    })?;
            }
            "--queue-depth" => {
                f.queue_depth = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("--queue-depth requires a positive integer, got `{v}`")
                })?;
            }
            "--deadline-ms" => {
                f.deadline_ms =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--deadline-ms requires a positive integer, got `{v}`")
                    })?);
            }
            "--lanes" => f.lanes = Some(parse_usize_list(&v, "--lanes")?),
            "--stages" => f.stages = Some(parse_usize_list(&v, "--stages")?),
            "--scratchpad-kb" => f.scratchpad_kb = Some(parse_usize_list(&v, "--scratchpad-kb")?),
            "--channels" => f.channels = Some(parse_usize_list(&v, "--channels")?),
            "--mix" => {
                f.mixes = Some(
                    v.split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<GridMix>()
                                .map_err(|e| format!("--mix: {e}"))
                        })
                        .collect::<Result<Vec<GridMix>, String>>()?,
                );
            }
            "--limit" => {
                f.limit =
                    Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--limit requires a positive integer, got `{v}`")
                    })?);
            }
            "--partition" => {
                f.partition = Some(
                    v.parse::<Partition>()
                        .map_err(|e| format!("--partition: {e}"))?,
                );
            }
            "--mixes" => {
                f.workload_mixes = Some(
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "--quantum" => {
                f.quantum =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--quantum requires a positive integer, got `{v}`")
                    })?);
            }
            "--evict" => {
                f.evict = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("--evict requires a tenant index, got `{v}`"))?,
                );
            }
            "--checkpoint-keep" => {
                f.checkpoint_keep =
                    Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--checkpoint-keep requires a positive integer, got `{v}`")
                    })?);
            }
            "--seeds" => {
                f.seeds =
                    Some(v.parse::<u64>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        format!("--seeds requires a positive integer, got `{v}`")
                    })?);
            }
            "--modes" => {
                f.modes = Some(
                    v.split(',')
                        .map(|s| {
                            SoakMode::parse(s).ok_or_else(|| {
                                format!("--modes: `{s}` is not solo, multi, or sched")
                            })
                        })
                        .collect::<Result<Vec<SoakMode>, String>>()?,
                );
            }
            "--fault-timeline" => {
                f.fault_timeline = Some(
                    v.parse::<FaultTimelineSpec>()
                        .map_err(|e| format!("--fault-timeline: {e}"))?,
                );
            }
            "--socket" => f.socket = Some(v),
            "--trace" => f.trace = Some(v),
            "--stats-json" => f.stats = Some(v),
            "--bitstream" => f.bitstream = Some(v),
            "--out" => f.out = Some(v),
            "--config" => f.config = Some(v),
            "--checkpoint-dir" => f.checkpoint_dir = Some(v),
            "--resume" => f.resume = Some(v),
            "--journal" => f.journal = Some(v),
            "--faults" => {
                f.faults = Some(
                    v.parse::<FaultSpec>()
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--step-mode" => {
                f.step = match v.as_str() {
                    "event" => StepMode::Event,
                    "cycle" => StepMode::Cycle,
                    _ => {
                        return Err(format!(
                            "--step-mode requires `event` or `cycle`, got `{v}`"
                        ))
                    }
                };
            }
            _ => unreachable!("flag list and match arms agree"),
        }
        i += 2;
    }
    Ok(f)
}

/// Validates `--checkpoint-dir` up front: creates the directory when
/// missing and proves it is writable with a probe file, so a long run
/// cannot simulate for an hour before discovering its first checkpoint
/// has nowhere to go. Failures are usage errors (exit 2), reported before
/// any work starts.
fn ensure_checkpoint_dir(dir: &str) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("--checkpoint-dir {dir}: cannot create directory: {e}"))?;
    let probe = Path::new(dir).join(".ckpt-probe.tmp");
    std::fs::write(&probe, b"probe")
        .map_err(|e| format!("--checkpoint-dir {dir}: directory is not writable: {e}"))?;
    let _ = std::fs::remove_file(&probe);
    Ok(())
}

/// `trace.json` + `GEMM` → `trace-gemm.json` (for `run all` output files).
fn per_bench_path(path: &str, bench: &str) -> String {
    let bench = bench.to_ascii_lowercase();
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{bench}.{ext}"),
        None => format!("{path}-{bench}"),
    }
}

/// Prints the cycle breakdown: one aggregate row per unit kind, and
/// per-unit rows when `per_unit` is set. The `recov` column is the
/// fault-recovery overlay (cycles re-doing squashed work), not a fifth
/// class.
fn print_units(units: &UnitStats, per_unit: bool) {
    let pct = |v: u64, t: u64| {
        if t == 0 {
            0.0
        } else {
            100.0 * v as f64 / t as f64
        }
    };
    println!(
        "  {:<18} {:>3} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "unit", "n", "busy%", "ctrl%", "mem%", "idle%", "recov"
    );
    for kind in [UnitKind::Pcu, UnitKind::Pmu, UnitKind::Ag] {
        let n = units.units.iter().filter(|u| u.kind == kind).count();
        if n == 0 {
            continue;
        }
        let a = units.aggregate(kind);
        let t = a.total();
        println!(
            "  {:<18} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
            kind.as_str(),
            n,
            pct(a.busy, t),
            pct(a.ctrl_stall, t),
            pct(a.mem_stall, t),
            pct(a.idle, t),
            a.recovery,
        );
    }
    if per_unit {
        for u in &units.units {
            let c = &u.cycles;
            let t = c.total();
            println!(
                "    {:<16} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
                u.label,
                u.kind.as_str(),
                pct(c.busy, t),
                pct(c.ctrl_stall, t),
                pct(c.mem_stall, t),
                pct(c.idle, t),
                c.recovery,
            );
        }
    }
}

struct RunConfig {
    config: Option<String>,
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: FaultMap,
    step: StepMode,
    threads: usize,
    max_cycles: Option<u64>,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_keep: usize,
    resume: Option<String>,
    partition: Option<Partition>,
    timeline: Option<FaultTimelineSpec>,
    heal: bool,
}

/// A failed run, carrying the exit status it maps to.
struct RunFailure {
    code: ExitStatus,
    message: String,
}

impl RunFailure {
    fn other(message: String) -> RunFailure {
        RunFailure {
            code: ExitStatus::Runtime,
            message,
        }
    }

    fn from_sim(e: SimError) -> RunFailure {
        RunFailure {
            code: ExitStatus::from(&e),
            message: e.to_string(),
        }
    }
}

/// One-line result summary (cycles, utilization, power, FPGA speedup).
fn summary_line(
    bench: &Bench,
    params: &PlasticineParams,
    out: &plasticine::compiler::CompileOutput,
    r: &SimResult,
) -> String {
    let (pcu, pmu, ag) = out.config.utilization();
    let power = PowerModel::new().estimate(r, &out.config);
    let fpga = FpgaModel::new().estimate(&bench.fpga);
    let speedup = fpga.seconds / r.seconds(params.clock_ghz);
    format!(
        "{:<14} {:>10} cycles  util pcu/pmu/ag {:>4.0}%/{:>4.0}%/{:>4.0}%  {:>5.1} W  vs FPGA {:>6.1}x  [verified]",
        bench.name,
        r.cycles,
        100.0 * pcu,
        100.0 * pmu,
        100.0 * ag,
        power.total_w,
        speedup,
    )
}

/// Loads a `compile --out` artifact and recovers the exact program it was
/// compiled from (replaying the degradation log against the benchmark's
/// pristine program).
fn load_artifact(
    path: &str,
    bench: &Bench,
) -> Result<
    (
        plasticine::compiler::CompileOutput,
        plasticine::ppir::Program,
    ),
    RunFailure,
> {
    let b = Bitstream::load(std::path::Path::new(path))
        .map_err(|e| RunFailure::other(format!("loading {path}: {e}")))?;
    if !b.matches_program(&bench.program) {
        return Err(RunFailure::other(format!(
            "{path} was not compiled from `{}` at this scale (artifact program \
             `{}`, hash {:016x})",
            bench.name, b.program_name, b.program_hash
        )));
    }
    let prog = b
        .recover_program(&bench.program)
        .map_err(|e| RunFailure::other(format!("{path}: {e}")))?;
    for note in &b.degradations {
        println!("  degraded: {note}");
    }
    Ok((b.output, prog))
}

fn run_one(bench: &Bench, params: &PlasticineParams, cfg: &RunConfig) -> Result<(), RunFailure> {
    let (out, prog) = match &cfg.config {
        Some(path) => {
            let loaded = load_artifact(path, bench)?;
            // A partition-mismatched artifact is a usage error, not a
            // runtime one: the caller asked to run on a band the bitstream
            // was not compiled for, and silently honoring either side
            // would violate the placement the artifact encodes.
            if let Some(requested) = &cfg.partition {
                if loaded.0.config.partition != cfg.partition {
                    let artifact = match &loaded.0.config.partition {
                        Some(p) => p.to_string(),
                        None => "the whole fabric".to_string(),
                    };
                    return Err(RunFailure {
                        code: ExitStatus::Usage,
                        message: format!(
                            "--partition {requested} does not match {path}: the \
                             artifact was compiled for {artifact} (recompile \
                             with `compile --partition`, or drop the flag to \
                             use the artifact's own partition)",
                        ),
                    });
                }
            }
            loaded
        }
        None => {
            let copts = CompileOptions {
                faults: cfg.faults.clone(),
                partition: cfg.partition,
                ..CompileOptions::new()
            };
            let (out, prog, degraded) =
                compile_degraded(&bench.program, params, &copts).map_err(|e| RunFailure {
                    code: ExitStatus::Compile,
                    message: e.to_string(),
                })?;
            for note in &degraded {
                println!("  degraded: {note}");
            }
            (out, prog)
        }
    };
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let mut opts = SimOptions {
        faults: cfg.faults.clone(),
        step: cfg.step,
        threads: cfg.threads,
        ..SimOptions::default()
    };
    if let Some(n) = cfg.max_cycles {
        opts.max_cycles = n;
    }
    // A partitioned run owns only its band's share of the DRAM channels;
    // shrinking the simulated channel count is what makes a solo run on a
    // band byte-identical to the same tenant co-located under `multi`.
    if let Some(p) = cfg.partition.or(out.config.partition) {
        opts.dram.channels = p.channels;
    }
    // The timeline samples after the channel override so a partitioned
    // run draws the exact arrivals the service-side scheduler would for
    // the same band — the byte-identity contracts depend on it.
    if let Some(spec) = &cfg.timeline {
        opts.timeline = FaultTimeline::sample(&Topology::new(params), spec, opts.dram.channels);
        println!("  fault timeline: {}", opts.timeline.summary());
    }
    if cfg.heal {
        let band = cfg
            .partition
            .expect("`run` validates that --heal requires --partition");
        let h = chaos::run_healed(bench, params, band, &opts, 16).map_err(RunFailure::from_sim)?;
        println!("{}", summary_line(bench, params, &out, &h.result));
        if h.heals > 0 {
            let bands: Vec<String> = h.bands.iter().map(Partition::to_string).collect();
            println!(
                "  healed {} degraded exit(s) ({} migration(s)) at cycle(s) {:?}; bands {}",
                h.heals,
                h.migrations,
                h.degrade_cycles,
                bands.join(" -> "),
            );
        }
        if let Some(path) = &cfg.stats {
            std::fs::write(path, stats_with_bench(bench, &h.result).pretty())
                .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
            println!("  stats written to {path}");
        }
        return Ok(());
    }
    let checkpointing = cfg.checkpoint_every.is_some() || cfg.checkpoint_dir.is_some();
    let sim_res = if checkpointing || cfg.resume.is_some() {
        let resume = match &cfg.resume {
            Some(path) => {
                let c = Checkpoint::load(Path::new(path))
                    .map_err(|e| RunFailure::from_sim(SimError::Checkpoint(e)))?;
                println!("  resuming from cycle {} ({path})", c.cycle);
                Some(c)
            }
            None => None,
        };
        let dir = cfg.checkpoint_dir.as_deref().unwrap_or(".");
        let policy = CheckpointPolicy {
            every: cfg.checkpoint_every,
            // Any checkpointing flag also opts into auto-checkpoints at
            // cycle-budget and deadlock failures, so those simulated
            // cycles survive the error and can be resumed with bigger
            // limits.
            on_error: checkpointing,
        };
        simulate_checkpointed(
            &prog,
            &out,
            &mut m,
            &opts,
            policy,
            resume.as_ref(),
            &mut |c| match emit_checkpoint(dir, &bench.name, cfg.checkpoint_keep, c) {
                Ok(stamped) => println!(
                    "  checkpoint at cycle {} written to {}",
                    c.cycle,
                    stamped.display()
                ),
                // A failed write must not kill a healthy run: report it
                // and keep simulating.
                Err(e) => eprintln!("  checkpoint write failed: {e}"),
            },
        )
        .map(|r| (r, None))
    } else if cfg.trace.is_some() {
        simulate_traced(&prog, &out, &mut m, &opts).map(|(r, t)| (r, Some(t)))
    } else {
        simulate(&prog, &out, &mut m, &opts).map(|r| (r, None))
    };
    let (r, trace): (SimResult, Option<_>) = match sim_res {
        Ok(x) => x,
        Err(SimError::Deadlock(report)) => {
            // The diagnosis embeds the trace up to the deadlock (with
            // instant markers on the blocked units): still write it out.
            if let (Some(path), Some(t)) = (&cfg.trace, &report.trace) {
                let json = t.chrome_trace(&prog);
                match std::fs::write(path, json.pretty()) {
                    Ok(()) => eprintln!("deadlock trace written to {path}"),
                    Err(e) => eprintln!("writing {path}: {e}"),
                }
            }
            return Err(RunFailure::from_sim(SimError::Deadlock(report)));
        }
        Err(e) => return Err(RunFailure::from_sim(e)),
    };
    bench.verify(&m).map_err(RunFailure::other)?;
    println!("{}", summary_line(bench, params, &out, &r));
    if cfg.faults.has_hard_faults() || cfg.faults.transient.any() {
        let f = &r.faults;
        println!(
            "  faults: {}  recovered: ecc={} parity={} lane={} drops={} retries={} (+{} cy backoff, {} recovery cy)",
            cfg.faults.summary(),
            f.ecc_corrected,
            f.parity_replays,
            f.lane_replays,
            f.dram_dropped,
            f.dram_retries,
            f.dram_retry_wait_cycles,
            f.recovery_cycles,
        );
    }
    if cfg.units {
        print_units(&r.units, true);
    }
    if let (Some(path), Some(trace)) = (&cfg.trace, &trace) {
        let json = trace.chrome_trace(&prog);
        std::fs::write(path, json.pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  trace ({} events) written to {path}", trace.events.len());
    }
    if let Some(path) = &cfg.stats {
        std::fs::write(path, stats_with_bench(bench, &r).pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  stats written to {path}");
    }
    Ok(())
}

/// Batch-supervisor options (everything after the benchmark list).
#[derive(Clone)]
struct BatchConfig {
    jobs: usize,
    threads: usize,
    faults: FaultMap,
    step: StepMode,
    stats: Option<String>,
    max_cycles: Option<u64>,
    timeout: Option<Duration>,
    retries: u32,
    journal: Option<String>,
    fail_fast: bool,
    checkpoint_every: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_keep: usize,
}

/// Stable identity of a batch job across invocations: the same bench at
/// the same scale under the same fault map and step mode hashes to the
/// same key, so a re-invoked batch can match journal entries to jobs.
fn job_key(bench: &Bench, faults: &FaultMap, step: StepMode) -> String {
    let desc = format!(
        "{}|{:016x}|{}|{:?}",
        bench.name,
        bench.program.stable_hash(),
        faults.summary(),
        step
    );
    format!("{:016x}", plasticine::json::hash::fnv1a_str(&desc))
}

/// One `batch` work item: compile through the shared cache, simulate
/// (checkpointing and resuming per the batch config), verify. Returns the
/// text to print, buffered so worker output can be emitted in
/// deterministic order.
fn batch_one(
    bench: &Bench,
    params: &PlasticineParams,
    cache: &CompileCache,
    cfg: &BatchConfig,
) -> Result<String, RunFailure> {
    // Failure-path test hooks (see `env_lists_bench`): CI injects one
    // panicking and one hanging job and asserts the supervisor contains
    // both while the rest of the batch completes.
    if env_lists_bench("PLASTICINE_TEST_PANIC", &bench.name) {
        panic!("injected panic in `{}` (PLASTICINE_TEST_PANIC)", bench.name);
    }
    if env_lists_bench("PLASTICINE_TEST_HANG", &bench.name) {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let copts = CompileOptions {
        faults: cfg.faults.clone(),
        ..CompileOptions::new()
    };
    let cached = cache
        .compile_degraded(&bench.program, params, &copts)
        .map_err(|e| RunFailure {
            code: ExitStatus::Compile,
            message: e.to_string(),
        })?;
    let (out, prog, degraded) = &*cached;
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let mut opts = SimOptions {
        faults: cfg.faults.clone(),
        step: cfg.step,
        threads: cfg.threads,
        ..SimOptions::default()
    };
    if let Some(n) = cfg.max_cycles {
        opts.max_cycles = n;
    }
    let mut text = String::new();
    let checkpointing = cfg.checkpoint_every.is_some() || cfg.checkpoint_dir.is_some();
    let r = if checkpointing {
        let dir = cfg.checkpoint_dir.as_deref().unwrap_or(".");
        let ckpt_path = checkpoint_path(dir, &bench.name);
        // An interrupted earlier invocation may have left a checkpoint:
        // resume from it when it matches this exact job, otherwise start
        // fresh (a stale or foreign snapshot is a note, not an error).
        let resume = match Checkpoint::load(&ckpt_path) {
            Ok(c) => match c.matches(prog, &out.config, &opts) {
                Ok(()) => {
                    let _ = writeln!(
                        text,
                        "  resuming from cycle {} ({})",
                        c.cycle,
                        ckpt_path.display()
                    );
                    Some(c)
                }
                Err(e) => {
                    let _ = writeln!(text, "  ignoring stale checkpoint: {e}");
                    None
                }
            },
            Err(_) => None,
        };
        let policy = CheckpointPolicy {
            every: cfg.checkpoint_every,
            on_error: true,
        };
        let r = simulate_checkpointed(
            prog,
            out,
            &mut m,
            &opts,
            policy,
            resume.as_ref(),
            &mut |c| {
                if let Err(e) = emit_checkpoint(dir, &bench.name, cfg.checkpoint_keep, c) {
                    eprintln!("{}: checkpoint write failed: {e}", bench.name);
                }
            },
        )
        .map_err(RunFailure::from_sim)?;
        // The job finished: its checkpoint is spent.
        let _ = std::fs::remove_file(&ckpt_path);
        r
    } else {
        simulate(prog, out, &mut m, &opts).map_err(RunFailure::from_sim)?
    };
    bench.verify(&m).map_err(RunFailure::other)?;
    for note in degraded {
        let _ = writeln!(text, "  degraded: {note}");
    }
    let _ = write!(text, "{}", summary_line(bench, params, out, &r));
    if let Some(path) = &cfg.stats {
        let path = per_bench_path(path, &bench.name);
        std::fs::write(&path, stats_with_bench(bench, &r).pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        let _ = write!(text, "\n  stats written to {path}");
    }
    Ok(text)
}

/// Runs one job attempt on its own thread so the supervisor can enforce a
/// wall-clock limit and absorb panics. On timeout the worker thread is
/// abandoned (it holds no locks the batch needs; the process reaps it at
/// exit) and the attempt reports as a runtime failure.
fn run_attempt(
    bench: &Bench,
    params: &PlasticineParams,
    cache: &Arc<CompileCache>,
    cfg: &BatchConfig,
) -> Result<String, RunFailure> {
    let (tx, rx) = mpsc::channel();
    let (b, p, ca, cf) = (
        bench.clone(),
        params.clone(),
        Arc::clone(cache),
        cfg.clone(),
    );
    let handle = std::thread::spawn(move || {
        let res = catch_unwind(AssertUnwindSafe(|| batch_one(&b, &p, &ca, &cf)));
        let _ = tx.send(res);
    });
    let received = match cfg.timeout {
        Some(limit) => rx.recv_timeout(limit).map_err(|_| limit),
        None => rx.recv().map_err(|_| Duration::ZERO),
    };
    match received {
        Ok(res) => {
            let _ = handle.join();
            res.unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(RunFailure::other(format!("worker panicked: {msg}")))
            })
        }
        Err(limit) => Err(RunFailure::other(format!(
            "timed out after {}s (worker abandoned)",
            limit.as_secs()
        ))),
    }
}

/// A job's attempt loop: bounded retry with exponential backoff, applied
/// only to transient-fault exhaustion (the one failure class the fault
/// model itself calls transient). Returns the final result and how many
/// attempts it took.
fn supervise_job(
    bench: &Bench,
    params: &PlasticineParams,
    cache: &Arc<CompileCache>,
    cfg: &BatchConfig,
) -> (Result<String, RunFailure>, u32) {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let res = run_attempt(bench, params, cache, cfg);
        match &res {
            Err(f) if f.code == ExitStatus::FaultExhaustion && attempt <= cfg.retries => {
                // Jittered so concurrent jobs that exhausted in lockstep
                // (same fault spec, same wall-clock) do not retry in
                // lockstep too; deterministic per (seed, bench, attempt).
                let backoff = Duration::from_millis(jittered_backoff_ms(
                    cfg.faults.transient.seed,
                    &bench.name,
                    attempt,
                ));
                eprintln!(
                    "{}: fault exhaustion (attempt {attempt}), retrying in {}ms",
                    bench.name,
                    backoff.as_millis()
                );
                std::thread::sleep(backoff);
            }
            _ => return (res, attempt),
        }
    }
}

/// Per-job outcome the supervisor reports on.
enum JobOutcome {
    Ok(String),
    /// The journal says a previous invocation already completed this job.
    Skipped,
    Failed(RunFailure, u32),
}

/// Runs the batch over `cfg.jobs` worker threads sharing one compile
/// cache. Workers pull indices from a shared counter; results are
/// collected by index and printed in input order, so output is identical
/// regardless of scheduling. Every job runs under the supervisor
/// (panic containment, wall-clock timeout, bounded retry, journaling);
/// failures are collected into a structured report instead of aborting
/// the batch, unless `--fail-fast` stops scheduling after the first. The
/// exit status is the first (by input order) failure's.
fn run_batch(benches: &[Bench], params: &PlasticineParams, cfg: &BatchConfig) -> ExitCode {
    let journal = match Journal::load(cfg.journal.as_deref()) {
        Ok(j) => Mutex::new(j),
        Err(e) => {
            eprintln!("{e}");
            return ExitStatus::Runtime.into();
        }
    };
    let cache = Arc::new(CompileCache::new());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let results: Mutex<Vec<Option<JobOutcome>>> =
        Mutex::new((0..benches.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(benches.len()) {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bench) = benches.get(i) else {
                    return;
                };
                let key = job_key(bench, &cfg.faults, cfg.step);
                {
                    let mut j = journal.lock().unwrap();
                    if j.find(&key).is_some_and(|e| e.status == JobStatus::Done) {
                        results.lock().unwrap()[i] = Some(JobOutcome::Skipped);
                        continue;
                    }
                    j.set(JournalEntry {
                        key: key.clone(),
                        bench: bench.name.clone(),
                        status: JobStatus::Running,
                        code: 0,
                        attempts: 0,
                        message: String::new(),
                        data: Json::Null,
                    });
                }
                let (res, attempts) = supervise_job(bench, params, &cache, cfg);
                let outcome = match res {
                    Ok(text) => {
                        journal.lock().unwrap().set(JournalEntry {
                            key,
                            bench: bench.name.clone(),
                            status: JobStatus::Done,
                            code: 0,
                            attempts,
                            message: String::new(),
                            data: Json::Null,
                        });
                        JobOutcome::Ok(text)
                    }
                    Err(f) => {
                        journal.lock().unwrap().set(JournalEntry {
                            key,
                            bench: bench.name.clone(),
                            status: JobStatus::Failed,
                            code: f.code.code(),
                            attempts,
                            message: f.message.clone(),
                            data: Json::Null,
                        });
                        if cfg.fail_fast {
                            stop.store(true, Ordering::Relaxed);
                        }
                        JobOutcome::Failed(f, attempts)
                    }
                };
                results.lock().unwrap()[i] = Some(outcome);
            });
        }
    });
    let results = results.into_inner().unwrap();
    let mut status = ExitStatus::Ok;
    let (mut ok, mut skipped, mut not_run) = (0usize, 0usize, 0usize);
    let mut failures: Vec<String> = Vec::new();
    for (bench, res) in benches.iter().zip(results) {
        match res {
            Some(JobOutcome::Ok(text)) => {
                println!("{text}");
                ok += 1;
            }
            Some(JobOutcome::Skipped) => {
                println!("{}: skipped (journal: already done)", bench.name);
                skipped += 1;
            }
            Some(JobOutcome::Failed(f, attempts)) => {
                eprintln!("{}: {}", bench.name, f.message);
                failures.push(format!(
                    "  {} exit {} after {attempts} attempt{}: {}",
                    bench.name,
                    f.code.code(),
                    if attempts == 1 { "" } else { "s" },
                    f.message
                ));
                if status == ExitStatus::Ok {
                    status = f.code;
                }
            }
            // `--fail-fast` stopped the schedule before this job was
            // claimed.
            None => not_run += 1,
        }
    }
    println!(
        "batch: {} jobs, {ok} ok, {} failed, {skipped} skipped, {not_run} not run, \
         compile cache {} hits / {} misses",
        benches.len(),
        failures.len(),
        cache.hits(),
        cache.misses()
    );
    if !failures.is_empty() {
        eprintln!("failures:");
        for line in &failures {
            eprintln!("{line}");
        }
    }
    status.into()
}

/// Materializes the fault map a spec describes for the current machine.
fn fault_map(spec: &Option<FaultSpec>, params: &PlasticineParams) -> FaultMap {
    match spec {
        Some(spec) => {
            let topo = Topology::new(params);
            let channels = plasticine::dram::DramConfig::default().channels;
            FaultMap::sample(&topo, spec, channels)
        }
        None => FaultMap::default(),
    }
}

/// Per-point lines, cumulative counts, and the frontier table for
/// `dse search`. Output order follows grid enumeration order, so it is
/// deterministic at any worker count.
fn print_dse_report(report: &SearchReport) {
    for (p, o) in &report.points {
        match o {
            PointOutcome::Done(d) => println!(
                "{:<18} perf {:>11.4e}  area {:>7.1} mm2  perf/W {:>11.4e}",
                p.label(),
                d.obj.perf,
                d.obj.area_mm2,
                d.obj.perf_per_w
            ),
            PointOutcome::Infeasible { message, .. } => {
                println!("{:<18} infeasible: {message}", p.label());
            }
            PointOutcome::Failed { message, .. } => {
                println!("{:<18} FAILED: {message}", p.label());
            }
            PointOutcome::NotRun => println!("{:<18} not run (--limit)", p.label()),
        }
    }
    let (done, infeasible, failed, not_run) = report.counts();
    println!(
        "\n{done} done, {infeasible} infeasible, {failed} failed, {not_run} not run \
         ({} evaluated this invocation)",
        report.evaluated_now
    );
    println!("Pareto frontier ({} points):", report.frontier.len());
    for e in report.frontier.entries() {
        println!(
            "  {:<16} perf {:>11.4e}  area {:>7.1} mm2  perf/W {:>11.4e}",
            e.id, e.obj.perf, e.obj.area_mm2, e.obj.perf_per_w
        );
    }
    for (name, f) in &report.mix_frontiers {
        println!("{name} frontier ({} points):", f.len());
        for e in f.entries() {
            println!(
                "  {:<16} perf {:>11.4e}  area {:>7.1} mm2  perf/W {:>11.4e}",
                e.id, e.obj.perf, e.obj.area_mm2, e.obj.perf_per_w
            );
        }
    }
    if !report.mix_frontiers.is_empty() {
        println!("robust across mixes ({} points):", report.robust.len());
        for l in &report.robust {
            println!("  {l}");
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = PlasticineParams::paper_final();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                eprintln!("`list` takes no arguments");
                return usage();
            }
            for b in all(Scale(1)) {
                println!("{}", b.name);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`run` requires a benchmark name before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[2..],
                &[
                    "--scale",
                    "--config",
                    "--trace",
                    "--stats-json",
                    "--units",
                    "--faults",
                    "--step-mode",
                    "--threads",
                    "--max-cycles",
                    "--checkpoint-every",
                    "--checkpoint-dir",
                    "--checkpoint-keep",
                    "--resume",
                    "--partition",
                    "--fault-timeline",
                    "--heal",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(p) = &flags.partition {
                if let Err(e) = p.validate(&params) {
                    eprintln!("{e}");
                    return usage();
                }
            }
            if flags.config.is_some() && name == "all" {
                eprintln!("--config loads one artifact and cannot be combined with `run all`");
                return usage();
            }
            if flags.resume.is_some() && name == "all" {
                eprintln!("--resume loads one checkpoint and cannot be combined with `run all`");
                return usage();
            }
            if flags.trace.is_some()
                && (flags.checkpoint_every.is_some()
                    || flags.checkpoint_dir.is_some()
                    || flags.resume.is_some())
            {
                eprintln!(
                    "--trace cannot be combined with checkpointing: a trace cannot be \
                     reconstructed across an interrupted run"
                );
                return usage();
            }
            if flags.heal {
                if flags.partition.is_none() {
                    eprintln!(
                        "--heal requires --partition: healing relocates the run between \
                         pattern-equivalent bands, so it must start on one"
                    );
                    return usage();
                }
                if flags.fault_timeline.is_none() {
                    eprintln!("--heal requires --fault-timeline: there is nothing to heal from");
                    return usage();
                }
                if flags.config.is_some()
                    || flags.trace.is_some()
                    || flags.resume.is_some()
                    || flags.checkpoint_every.is_some()
                    || flags.checkpoint_dir.is_some()
                {
                    eprintln!(
                        "--heal recompiles and resumes internally and cannot be combined \
                         with --config, --trace, --resume, or the checkpointing flags"
                    );
                    return usage();
                }
            }
            if let Some(dir) = &flags.checkpoint_dir {
                if let Err(e) = ensure_checkpoint_dir(dir) {
                    eprintln!("{e}");
                    return ExitStatus::Usage.into();
                }
            }
            let scale = Scale(flags.scale);
            let benches = if name == "all" {
                all(scale)
            } else {
                match find_bench(name, scale) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let many = benches.len() > 1;
            for b in &benches {
                let cfg = RunConfig {
                    config: flags.config.clone(),
                    trace: flags.trace.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    stats: flags.stats.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    units: flags.units,
                    faults: faults.clone(),
                    step: flags.step,
                    threads: flags.threads,
                    max_cycles: flags.max_cycles,
                    checkpoint_every: flags.checkpoint_every,
                    checkpoint_dir: flags.checkpoint_dir.clone(),
                    checkpoint_keep: flags.checkpoint_keep.unwrap_or(3),
                    resume: flags.resume.clone(),
                    partition: flags.partition,
                    timeline: flags.fault_timeline.clone(),
                    heal: flags.heal,
                };
                if let Err(e) = run_one(b, &params, &cfg) {
                    eprintln!("{}: {}", b.name, e.message);
                    return e.code.into();
                }
            }
            ExitCode::SUCCESS
        }
        Some("multi") => {
            let specs: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if specs.len() < 2 {
                eprintln!("`multi` requires at least two NAME=ROWS[@Y0][/CHANNELS] tenant specs");
                return usage();
            }
            let flags = match parse_flags(
                &args[1 + specs.len()..],
                &[
                    "--scale",
                    "--step-mode",
                    "--threads",
                    "--max-cycles",
                    "--quantum",
                    "--evict",
                    "--stats-json",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let scale = Scale(flags.scale);
            // Claim bands in spec order: explicit `ROWS@Y0` specs insert at
            // their offset, bare `ROWS` specs take the best-fit gap.
            let mut table = PartitionTable::new(&params);
            let mut placed: Vec<(Bench, Partition)> = Vec::new();
            for s in &specs {
                let Some((name, geom)) = s.split_once('=') else {
                    eprintln!("`{s}` is not NAME=ROWS[@Y0][/CHANNELS]");
                    return usage();
                };
                let Some(bench) = find_bench(name, scale) else {
                    eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                    return ExitCode::FAILURE;
                };
                // Tenant names are the per-tenant identity everywhere
                // downstream (stats files, eviction messages): a duplicate
                // would silently alias two tenants, so reject it up front
                // like an overlapping band.
                if placed.iter().any(|(b, _)| b.name == bench.name) {
                    eprintln!(
                        "duplicate tenant `{}`: each tenant needs a distinct benchmark",
                        bench.name
                    );
                    return usage();
                }
                let band = if geom.contains('@') {
                    let p: Partition = match geom.parse() {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("{name}: {e}");
                            return usage();
                        }
                    };
                    if let Err(e) = p.validate(&params) {
                        eprintln!("{name}: {e}");
                        return usage();
                    }
                    if let Err(e) = table.insert(p) {
                        eprintln!("{name}: {e}");
                        return usage();
                    }
                    p
                } else {
                    let (rows_s, channels) = match geom.split_once('/') {
                        Some((r, c)) => match c.parse::<usize>().ok().filter(|&n| n >= 1) {
                            Some(ch) => (r, ch),
                            None => {
                                eprintln!("{name}: `{c}` is not a channel count");
                                return usage();
                            }
                        },
                        None => (geom, 1),
                    };
                    let Some(rows) = rows_s.parse::<usize>().ok().filter(|&n| n >= 1) else {
                        eprintln!("{name}: `{rows_s}` is not a row count");
                        return usage();
                    };
                    match table.allocate(rows, channels) {
                        Some(p) => p,
                        None => {
                            eprintln!(
                                "{name}: no free band of {rows} rows / {channels} channels \
                                 ({} rows and {} channels left)",
                                table.free_rows(),
                                table.free_channels()
                            );
                            return usage();
                        }
                    }
                };
                placed.push((bench, band));
            }
            let quantum = flags.quantum.unwrap_or(2048);
            let mut ms = MultiSim::new(params.coalescing_units, quantum);
            let mut meta: Vec<(Bench, plasticine::compiler::CompileOutput)> = Vec::new();
            let admit = |ms: &mut MultiSim,
                         bench: &Bench,
                         band: Partition,
                         resume: Option<&Checkpoint>|
             -> Result<
                (TenantId, plasticine::compiler::CompileOutput),
                (String, ExitStatus),
            > {
                let copts = CompileOptions {
                    partition: Some(band),
                    ..CompileOptions::new()
                };
                let (out, prog, degraded) = compile_degraded(&bench.program, &params, &copts)
                    .map_err(|e| (format!("{}: {e}", bench.name), ExitStatus::Compile))?;
                for note in &degraded {
                    println!("  {}: degraded: {note}", bench.name);
                }
                let mut opts = SimOptions {
                    step: flags.step,
                    threads: flags.threads,
                    ..SimOptions::default()
                };
                if let Some(n) = flags.max_cycles {
                    opts.max_cycles = n;
                }
                // The tenant simulates against exactly its channel share —
                // the same override a solo `run --partition` applies, which
                // is what makes the two byte-identical.
                opts.dram.channels = band.channels;
                let mut m = Machine::new(&prog);
                bench.load(&mut m);
                let id = ms
                    .admit(&bench.name, &prog, &out, &mut m, &opts, resume)
                    .map_err(|e| (format!("{}: {e}", bench.name), ExitStatus::from(&e)))?;
                // Simulation is two-phase: the functional interpreter ran to
                // completion inside admit, so the output is checkable now,
                // before a single timing cycle.
                bench
                    .verify(&m)
                    .map_err(|e| (format!("{}: {e}", bench.name), ExitStatus::Runtime))?;
                Ok((id, out))
            };
            for (bench, band) in placed {
                match admit(&mut ms, &bench, band, None) {
                    Ok((id, out)) => {
                        println!("tenant {}: {} on {band}", id.0, bench.name);
                        meta.push((bench, out));
                    }
                    Err((msg, code)) => {
                        eprintln!("{msg}");
                        return code.into();
                    }
                }
            }
            if let Some(idx) = flags.evict {
                if idx >= meta.len() {
                    eprintln!("--evict {idx}: tenants are numbered 0..{}", meta.len());
                    return usage();
                }
                // Let every tenant make one round of progress so the
                // eviction checkpoint is mid-flight, then check the
                // resume round-trips.
                if let Err((tid, e)) = ms.round() {
                    eprintln!("{}: {e}", meta[tid.0].0.name);
                    return ExitStatus::from(&e).into();
                }
                match ms.evict(TenantId(idx)) {
                    Some(ckpt) => {
                        let band = meta[idx]
                            .1
                            .config
                            .partition
                            .expect("multi tenants have bands");
                        println!(
                            "tenant {idx}: {} evicted at cycle {} ({band} freed)",
                            meta[idx].0.name, ckpt.cycle
                        );
                        table.release(&band);
                        // Resume only on a band the checkpointed bitstream
                        // relocates onto (offset congruent modulo the grid
                        // mix's vertical period).
                        let new_band = table
                            .allocate_compatible(band.rows, band.channels, band.y0, params.mix)
                            .expect("the freed band itself is still compatible and fits");
                        let bench = meta[idx].0.clone();
                        match admit(&mut ms, &bench, new_band, Some(&ckpt)) {
                            Ok((id, out)) => {
                                println!(
                                    "tenant {}: {} resumed from cycle {} on {new_band}",
                                    id.0, bench.name, ckpt.cycle
                                );
                                meta.push((bench, out));
                            }
                            Err((msg, code)) => {
                                eprintln!("{msg}");
                                return code.into();
                            }
                        }
                    }
                    None => println!("tenant {idx}: finished before the eviction point"),
                }
            }
            if let Err((tid, e)) = ms.run() {
                eprintln!("{}: {e}", ms.tenants()[tid.0].name());
                return ExitStatus::from(&e).into();
            }
            for (i, t) in ms.tenants().iter().enumerate() {
                let (bench, out) = &meta[i];
                if t.is_evicted() {
                    println!(
                        "tenant {i}: {:<14} evicted at cycle {} (resumed above)",
                        t.name(),
                        t.now()
                    );
                    continue;
                }
                let r = t.result().expect("run() settles every live tenant");
                println!("tenant {i}: {}", summary_line(bench, &params, out, r));
                if let Some(p) = &flags.stats {
                    let path = per_bench_path(p, &bench.name);
                    if let Err(e) = std::fs::write(&path, stats_with_bench(bench, r).pretty()) {
                        eprintln!("writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("  stats written to {path}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`compile` requires a benchmark name before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[2..],
                &["--scale", "--faults", "--bitstream", "--out", "--partition"],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(p) = &flags.partition {
                if let Err(e) = p.validate(&params) {
                    eprintln!("{e}");
                    return usage();
                }
            }
            let Some(bench) = find_bench(name, Scale(flags.scale)) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let copts = CompileOptions {
                faults,
                partition: flags.partition,
                ..CompileOptions::new()
            };
            let (out, degraded) = match compile_degraded(&bench.program, &params, &copts) {
                Ok((o, _, degraded)) => {
                    for note in &degraded {
                        println!("  degraded: {note}");
                    }
                    (o, degraded)
                }
                Err(e) => {
                    eprintln!("{}: {e}", bench.name);
                    return ExitStatus::Compile.into();
                }
            };
            let cfg: &MachineConfig = &out.config;
            let (pcu, pmu, ag) = cfg.utilization();
            println!(
                "{}: {} PCUs, {} PMUs, {} AGs, {} links  util pcu/pmu/ag {:.0}%/{:.0}%/{:.0}%",
                bench.name,
                cfg.usage.pcus,
                cfg.usage.pmus,
                cfg.usage.ags,
                cfg.links.len(),
                100.0 * pcu,
                100.0 * pmu,
                100.0 * ag,
            );
            println!("pass timings:\n{}", out.timings.summary());
            if let Some(path) = &flags.bitstream {
                if let Err(e) = cfg.save(std::path::Path::new(path)) {
                    eprintln!("saving bitstream: {e}");
                    return ExitCode::FAILURE;
                }
                println!("bitstream written to {path}");
            }
            if let Some(path) = &flags.out {
                let artifact = Bitstream::new(&bench.program, out, degraded);
                if let Err(e) = artifact.save(std::path::Path::new(path)) {
                    eprintln!("saving artifact: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "artifact written to {path} (content hash {:016x})",
                    artifact.content_hash
                );
            }
            ExitCode::SUCCESS
        }
        Some("batch") => {
            let names: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if names.is_empty() {
                eprintln!("`batch` requires benchmark names (or `all`) before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[1 + names.len()..],
                &[
                    "--scale",
                    "--jobs",
                    "--threads",
                    "--stats-json",
                    "--faults",
                    "--step-mode",
                    "--max-cycles",
                    "--timeout",
                    "--retries",
                    "--journal",
                    "--fail-fast",
                    "--checkpoint-every",
                    "--checkpoint-dir",
                    "--checkpoint-keep",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(dir) = &flags.checkpoint_dir {
                if let Err(e) = ensure_checkpoint_dir(dir) {
                    eprintln!("{e}");
                    return ExitStatus::Usage.into();
                }
            }
            let scale = Scale(flags.scale);
            let mut benches = Vec::new();
            for name in names {
                if name == "all" {
                    benches.extend(all(scale));
                } else {
                    match find_bench(name, scale) {
                        Some(b) => benches.push(b),
                        None => {
                            eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            // Budget: jobs × threads should cover the machine once. An
            // explicit --jobs wins; otherwise divide the available cores
            // by the per-job simulator threads.
            let jobs = if flags.jobs > 0 {
                flags.jobs
            } else {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                (cores / flags.threads).max(1)
            };
            let cfg = BatchConfig {
                jobs,
                threads: flags.threads,
                faults,
                step: flags.step,
                stats: flags.stats.clone(),
                max_cycles: flags.max_cycles,
                timeout: flags.timeout.map(Duration::from_secs),
                retries: flags.retries,
                journal: flags.journal.clone(),
                fail_fast: flags.fail_fast,
                checkpoint_every: flags.checkpoint_every,
                checkpoint_dir: flags.checkpoint_dir.clone(),
                checkpoint_keep: flags.checkpoint_keep.unwrap_or(3),
            };
            run_batch(&benches, &params, &cfg)
        }
        Some("dse") => {
            if args.get(1).map(String::as_str) != Some("search") {
                eprintln!("`dse` requires the `search` subcommand");
                return usage();
            }
            let names: Vec<&String> = args[2..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if names.is_empty() {
                eprintln!("`dse search` requires benchmark names (or `all`) before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[2 + names.len()..],
                &[
                    "--scale",
                    "--jobs",
                    "--threads",
                    "--step-mode",
                    "--max-cycles",
                    "--journal",
                    "--out",
                    "--limit",
                    "--lanes",
                    "--stages",
                    "--mix",
                    "--mixes",
                    "--scratchpad-kb",
                    "--channels",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let scale = Scale(flags.scale);
            let mut benches = Vec::new();
            for name in names {
                if name == "all" {
                    benches.extend(all(scale));
                } else {
                    match find_bench(name, scale) {
                        Some(b) => benches.push(b),
                        None => {
                            eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let defaults = DseGrid::default();
            let grid = DseGrid {
                lanes: flags.lanes.unwrap_or(defaults.lanes),
                stages: flags.stages.unwrap_or(defaults.stages),
                mixes: flags.mixes.unwrap_or(defaults.mixes),
                scratchpad_kb: flags.scratchpad_kb.unwrap_or(defaults.scratchpad_kb),
                dram_channels: flags.channels.unwrap_or(defaults.dram_channels),
            };
            let jobs = if flags.jobs > 0 {
                flags.jobs
            } else {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                (cores / flags.threads).max(1)
            };
            let cfg = plasticine::dse::SearchConfig {
                grid,
                scale,
                jobs,
                step: flags.step,
                max_cycles: flags.max_cycles.unwrap_or(SimOptions::default().max_cycles),
                threads: flags.threads,
                limit: flags.limit,
                mixes: flags.workload_mixes.clone().unwrap_or_default(),
            };
            let mut journal = match Journal::load(flags.journal.as_deref()) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitStatus::Usage.into();
                }
            };
            let report = match plasticine::dse::search(&benches, &cfg, &mut journal) {
                Ok(r) => r,
                // Setup problems (empty grid axis, empty mix) are usage
                // errors, reported before any work starts.
                Err(e) => {
                    eprintln!("{e}");
                    return ExitStatus::Usage.into();
                }
            };
            print_dse_report(&report);
            if let Some(path) = &flags.out {
                let text = report.to_json(&benches, &cfg).pretty() + "\n";
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("writing {path}: {e}");
                    return ExitStatus::Runtime.into();
                }
            }
            // `code()` is always in 0..=6, so the cast is lossless.
            ExitCode::from(report.exit_code() as u8)
        }
        Some("chaos") => {
            let names: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            let flags = match parse_flags(
                &args[1 + names.len()..],
                &[
                    "--seeds",
                    "--scale",
                    "--step-mode",
                    "--threads",
                    "--modes",
                    "--out",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let mut cfg = chaos::SoakConfig {
                scale: flags.scale,
                step: flags.step,
                threads: flags.threads,
                ..chaos::SoakConfig::default()
            };
            if let Some(n) = flags.seeds {
                cfg.seeds = n;
            }
            if let Some(modes) = &flags.modes {
                cfg.modes = modes.clone();
            }
            let scale = Scale(flags.scale);
            if names.iter().any(|n| n.as_str() == "all") {
                cfg.benches = all(scale).into_iter().map(|b| b.name).collect();
            } else if !names.is_empty() {
                let mut benches = Vec::new();
                for name in &names {
                    match find_bench(name, scale) {
                        // Store the canonical name so reports and rotation
                        // are case-independent of what the user typed.
                        Some(b) => benches.push(b.name),
                        None => {
                            eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                cfg.benches = benches;
            }
            println!(
                "chaos soak: {} seeds over {} ({} mode(s))",
                cfg.seeds,
                cfg.benches.join(", "),
                cfg.modes.len(),
            );
            let report = chaos::soak(&params, &cfg);
            for it in &report.iterations {
                let detail = match &it.violation {
                    Some(v) => format!("  VIOLATION: {v}"),
                    None if it.heals > 0 => {
                        format!("  ({} heal(s), {} migration(s))", it.heals, it.migrations)
                    }
                    None => String::new(),
                };
                println!(
                    "  seed {:>3}  {:<6} {:<14} {}{detail}",
                    it.seed, it.mode, it.bench, it.status,
                );
            }
            println!(
                "{} iterations: {} healed, {} panics, {} violations -> {}",
                report.iterations.len(),
                report.healed(),
                report.panics(),
                report.violations(),
                if report.passed() { "PASS" } else { "FAIL" },
            );
            if let Some(path) = &flags.out {
                let text = report.to_json().pretty() + "\n";
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("writing {path}: {e}");
                    return ExitStatus::Runtime.into();
                }
                println!("report written to {path}");
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitStatus::Runtime.into()
            }
        }
        Some("serve") => {
            let flags = match parse_flags(
                &args[1..],
                &[
                    "--workers",
                    "--queue-depth",
                    "--deadline-ms",
                    "--socket",
                    "--retries",
                    "--scale",
                    "--threads",
                    "--faults",
                    "--step-mode",
                    "--max-cycles",
                    "--checkpoint-every",
                    "--checkpoint-dir",
                    "--checkpoint-keep",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if let Some(dir) = &flags.checkpoint_dir {
                if let Err(e) = ensure_checkpoint_dir(dir) {
                    eprintln!("{e}");
                    return ExitStatus::Usage.into();
                }
            }
            let mut opts = ServeOptions::default();
            if flags.workers > 0 {
                opts.workers = flags.workers;
            }
            if flags.queue_depth > 0 {
                opts.queue_depth = flags.queue_depth;
            }
            if let Some(ms) = flags.deadline_ms {
                opts.deadline = Duration::from_millis(ms);
            }
            opts.retries = flags.retries;
            opts.socket = flags.socket.as_ref().map(PathBuf::from);
            opts.defaults = RequestDefaults {
                scale: flags.scale,
                step: flags.step,
                threads: flags.threads,
                max_cycles: flags.max_cycles,
                faults: flags.faults.clone(),
                checkpoint_every: flags.checkpoint_every,
                checkpoint_dir: flags.checkpoint_dir.clone(),
                checkpoint_keep: flags.checkpoint_keep.unwrap_or(3),
            };
            match plasticine::service::serve(&params, opts) {
                Ok(_) => ExitCode::SUCCESS,
                // Startup failures only (unusable socket path): once the
                // daemon is serving, request failures are typed responses,
                // never daemon exits.
                Err(e) => {
                    eprintln!("{e}");
                    ExitStatus::Usage.into()
                }
            }
        }
        _ => usage(),
    }
}
