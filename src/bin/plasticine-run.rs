//! `plasticine-run` — command-line driver for the full stack.
//!
//! ```sh
//! plasticine-run list
//! plasticine-run run GEMM --scale 4
//! plasticine-run run GEMM --trace gemm.json --stats-json gemm-stats.json
//! plasticine-run compile BFS --bitstream bfs.json
//! ```

use plasticine::arch::{MachineConfig, PlasticineParams};
use plasticine::compiler::compile;
use plasticine::fpga::FpgaModel;
use plasticine::json::Json;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, simulate_traced, SimOptions, SimResult, UnitKind, UnitStats};
use plasticine::workloads::{all, Bench, Scale};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  plasticine-run list\n  plasticine-run run <benchmark|all> [--scale N] [--trace FILE] [--stats-json FILE] [--units]\n  plasticine-run compile <benchmark> [--scale N] [--bitstream FILE]\n\nrun options:\n  --trace FILE       write a Chrome trace-viewer JSON (chrome://tracing, ui.perfetto.dev)\n  --stats-json FILE  write a machine-readable stats snapshot\n  --units            print the per-unit stall breakdown table\n(with `run all`, the benchmark name is inserted into each output file name)"
    );
    ExitCode::FAILURE
}

fn find_bench(name: &str, scale: Scale) -> Option<Bench> {
    all(scale)
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

fn parse_scale(args: &[String]) -> Scale {
    args.windows(2)
        .find(|w| w[0] == "--scale")
        .and_then(|w| w[1].parse::<usize>().ok())
        .map(Scale)
        .unwrap_or(Scale(1))
}

fn parse_path(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} requires a file argument")),
        },
        None => Ok(None),
    }
}

/// `trace.json` + `GEMM` → `trace-gemm.json` (for `run all` output files).
fn per_bench_path(path: &str, bench: &str) -> String {
    let bench = bench.to_ascii_lowercase();
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{bench}.{ext}"),
        None => format!("{path}-{bench}"),
    }
}

/// Prints the four-way cycle breakdown: one aggregate row per unit kind,
/// and per-unit rows when `per_unit` is set.
fn print_units(units: &UnitStats, per_unit: bool) {
    let pct = |v: u64, t: u64| {
        if t == 0 {
            0.0
        } else {
            100.0 * v as f64 / t as f64
        }
    };
    println!(
        "  {:<18} {:>3} {:>7} {:>7} {:>7} {:>7}",
        "unit", "n", "busy%", "ctrl%", "mem%", "idle%"
    );
    for kind in [UnitKind::Pcu, UnitKind::Pmu, UnitKind::Ag] {
        let n = units.units.iter().filter(|u| u.kind == kind).count();
        if n == 0 {
            continue;
        }
        let a = units.aggregate(kind);
        let t = a.total();
        println!(
            "  {:<18} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            kind.as_str(),
            n,
            pct(a.busy, t),
            pct(a.ctrl_stall, t),
            pct(a.mem_stall, t),
            pct(a.idle, t),
        );
    }
    if per_unit {
        for u in &units.units {
            let c = &u.cycles;
            let t = c.total();
            println!(
                "    {:<16} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                u.label,
                u.kind.as_str(),
                pct(c.busy, t),
                pct(c.ctrl_stall, t),
                pct(c.mem_stall, t),
                pct(c.idle, t),
            );
        }
    }
}

struct RunOutputs {
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
}

fn run_one(bench: &Bench, params: &PlasticineParams, outs: &RunOutputs) -> Result<(), String> {
    let out = compile(&bench.program, params).map_err(|e| e.to_string())?;
    let mut m = Machine::new(&bench.program);
    bench.load(&mut m);
    let opts = SimOptions::default();
    let (r, trace): (SimResult, Option<_>) = if outs.trace.is_some() {
        let (r, t) =
            simulate_traced(&bench.program, &out, &mut m, &opts).map_err(|e| e.to_string())?;
        (r, Some(t))
    } else {
        (
            simulate(&bench.program, &out, &mut m, &opts).map_err(|e| e.to_string())?,
            None,
        )
    };
    bench.verify(&m)?;
    let (pcu, pmu, ag) = out.config.utilization();
    let power = PowerModel::new().estimate(&r, &out.config);
    let fpga = FpgaModel::new().estimate(&bench.fpga);
    let speedup = fpga.seconds / r.seconds(params.clock_ghz);
    println!(
        "{:<14} {:>10} cycles  util pcu/pmu/ag {:>4.0}%/{:>4.0}%/{:>4.0}%  {:>5.1} W  vs FPGA {:>6.1}x  [verified]",
        bench.name,
        r.cycles,
        100.0 * pcu,
        100.0 * pmu,
        100.0 * ag,
        power.total_w,
        speedup,
    );
    if outs.units {
        print_units(&r.units, true);
    }
    if let (Some(path), Some(trace)) = (&outs.trace, &trace) {
        let json = trace.chrome_trace(&bench.program);
        std::fs::write(path, json.pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  trace ({} events) written to {path}", trace.events.len());
    }
    if let Some(path) = &outs.stats {
        let mut stats = r.stats_json();
        if let Json::Obj(pairs) = &mut stats {
            pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
        }
        std::fs::write(path, stats.pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  stats written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = PlasticineParams::paper_final();
    match args.first().map(String::as_str) {
        Some("list") => {
            for b in all(Scale(1)) {
                println!("{}", b.name);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let scale = parse_scale(&args);
            let (trace, stats) = match (
                parse_path(&args, "--trace"),
                parse_path(&args, "--stats-json"),
            ) {
                (Ok(t), Ok(s)) => (t, s),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let units = args.iter().any(|a| a == "--units");
            let benches = if name == "all" {
                all(scale)
            } else {
                match find_bench(name, scale) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let many = benches.len() > 1;
            for b in &benches {
                let outs = RunOutputs {
                    trace: trace.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    stats: stats.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    units,
                };
                if let Err(e) = run_one(b, &params, &outs) {
                    eprintln!("{}: {e}", b.name);
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let scale = parse_scale(&args);
            let Some(bench) = find_bench(name, scale) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            let out = match compile(&bench.program, &params) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{}: {e}", bench.name);
                    return ExitCode::FAILURE;
                }
            };
            let cfg: &MachineConfig = &out.config;
            println!(
                "{}: {} PCUs, {} PMUs, {} AGs, {} links",
                bench.name,
                cfg.usage.pcus,
                cfg.usage.pmus,
                cfg.usage.ags,
                cfg.links.len()
            );
            if let Some(pos) = args.iter().position(|a| a == "--bitstream") {
                let Some(path) = args.get(pos + 1) else {
                    return usage();
                };
                if let Err(e) = cfg.save(std::path::Path::new(path)) {
                    eprintln!("saving bitstream: {e}");
                    return ExitCode::FAILURE;
                }
                println!("bitstream written to {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
