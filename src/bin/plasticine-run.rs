//! `plasticine-run` — command-line driver for the full stack.
//!
//! ```sh
//! plasticine-run list
//! plasticine-run run GEMM --scale 4
//! plasticine-run run GEMM --trace gemm.json --stats-json gemm-stats.json
//! plasticine-run run all --faults pcu=6,pmu=6,links=5,seed=42
//! plasticine-run compile BFS --out bfs-cfg.json
//! plasticine-run run BFS --config bfs-cfg.json --stats-json bfs-stats.json
//! plasticine-run batch all --jobs 4 --stats-json stats.json
//! ```
//!
//! Exit codes are the [`ExitStatus`] contract: 0 success, 1 runtime
//! failure (bad data, I/O, verification), 2 usage error, 3 compilation
//! failure (including insufficient degraded fabric), 4 deadlock,
//! 5 transient-fault exhaustion, 6 cycle budget exceeded.

use plasticine::arch::{FaultMap, FaultSpec, MachineConfig, PlasticineParams, Topology};
use plasticine::compiler::{compile_degraded, Bitstream, CompileCache, CompileOptions};
use plasticine::fpga::FpgaModel;
use plasticine::json::Json;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::sim::{
    simulate, simulate_traced, ExitStatus, SimError, SimOptions, SimResult, StepMode, UnitKind,
    UnitStats,
};
use plasticine::workloads::{all, Bench, Scale};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  plasticine-run list\n  plasticine-run run <benchmark|all> [--scale N] [--config FILE] [--trace FILE] [--stats-json FILE] [--units] [--faults SPEC] [--step-mode MODE]\n  plasticine-run compile <benchmark> [--scale N] [--faults SPEC] [--out FILE] [--bitstream FILE]\n  plasticine-run batch <benchmark...|all> [--scale N] [--jobs N] [--stats-json FILE] [--faults SPEC] [--step-mode MODE]\n\nrun options:\n  --config FILE      load a serialized artifact (`compile --out`) instead of compiling\n  --trace FILE       write a Chrome trace-viewer JSON (chrome://tracing, ui.perfetto.dev)\n  --stats-json FILE  write a machine-readable stats snapshot\n  --units            print the per-unit stall breakdown table\n  --faults SPEC      inject faults, e.g. pcu=3,pmu=2,links=5,banks=4,chan=1,seed=42\n                     (hard faults; transient rates: lane=P,sram=P,drop=P,retries=N)\n  --step-mode MODE   `event` (default: skip quiescent cycles) or `cycle`\n                     (step every cycle); statistics are bit-identical\n(with `run all`, the benchmark name is inserted into each output file name)\n\ncompile options:\n  --out FILE         write the full compile artifact (config + placement +\n                     analysis, versioned and content-hashed) for `run --config`\n  --bitstream FILE   write only the machine configuration\n\nbatch options:\n  --jobs N           worker threads (default: available parallelism)\n  (workers share one compile cache; output order is deterministic)\n\nexit codes: 0 ok, 1 runtime, 2 usage, 3 compile, 4 deadlock, 5 fault exhaustion,\n            6 cycle budget exceeded"
    );
    ExitStatus::Usage.into()
}

fn find_bench(name: &str, scale: Scale) -> Option<Bench> {
    all(scale)
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Parsed command-line flags (strict: unknown flags and malformed values
/// are usage errors).
#[derive(Default)]
struct Flags {
    scale: usize,
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: Option<FaultSpec>,
    bitstream: Option<String>,
    out: Option<String>,
    config: Option<String>,
    jobs: usize,
    step: StepMode,
}

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<Flags, String> {
    let mut f = Flags {
        scale: 1,
        ..Flags::default()
    };
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if !allowed.contains(&a) {
            return Err(format!("unknown option `{a}`"));
        }
        if a == "--units" {
            f.units = true;
            i += 1;
            continue;
        }
        let v = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => return Err(format!("{a} requires a value")),
        };
        match a {
            "--scale" => {
                f.scale = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--scale requires a positive integer, got `{v}`"))?;
            }
            "--jobs" => {
                f.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs requires a positive integer, got `{v}`"))?;
            }
            "--trace" => f.trace = Some(v),
            "--stats-json" => f.stats = Some(v),
            "--bitstream" => f.bitstream = Some(v),
            "--out" => f.out = Some(v),
            "--config" => f.config = Some(v),
            "--faults" => {
                f.faults = Some(
                    v.parse::<FaultSpec>()
                        .map_err(|e| format!("--faults: {e}"))?,
                );
            }
            "--step-mode" => {
                f.step = match v.as_str() {
                    "event" => StepMode::Event,
                    "cycle" => StepMode::Cycle,
                    _ => {
                        return Err(format!(
                            "--step-mode requires `event` or `cycle`, got `{v}`"
                        ))
                    }
                };
            }
            _ => unreachable!("flag list and match arms agree"),
        }
        i += 2;
    }
    Ok(f)
}

/// `trace.json` + `GEMM` → `trace-gemm.json` (for `run all` output files).
fn per_bench_path(path: &str, bench: &str) -> String {
    let bench = bench.to_ascii_lowercase();
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{bench}.{ext}"),
        None => format!("{path}-{bench}"),
    }
}

/// Prints the cycle breakdown: one aggregate row per unit kind, and
/// per-unit rows when `per_unit` is set. The `recov` column is the
/// fault-recovery overlay (cycles re-doing squashed work), not a fifth
/// class.
fn print_units(units: &UnitStats, per_unit: bool) {
    let pct = |v: u64, t: u64| {
        if t == 0 {
            0.0
        } else {
            100.0 * v as f64 / t as f64
        }
    };
    println!(
        "  {:<18} {:>3} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "unit", "n", "busy%", "ctrl%", "mem%", "idle%", "recov"
    );
    for kind in [UnitKind::Pcu, UnitKind::Pmu, UnitKind::Ag] {
        let n = units.units.iter().filter(|u| u.kind == kind).count();
        if n == 0 {
            continue;
        }
        let a = units.aggregate(kind);
        let t = a.total();
        println!(
            "  {:<18} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
            kind.as_str(),
            n,
            pct(a.busy, t),
            pct(a.ctrl_stall, t),
            pct(a.mem_stall, t),
            pct(a.idle, t),
            a.recovery,
        );
    }
    if per_unit {
        for u in &units.units {
            let c = &u.cycles;
            let t = c.total();
            println!(
                "    {:<16} {:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
                u.label,
                u.kind.as_str(),
                pct(c.busy, t),
                pct(c.ctrl_stall, t),
                pct(c.mem_stall, t),
                pct(c.idle, t),
                c.recovery,
            );
        }
    }
}

struct RunConfig {
    config: Option<String>,
    trace: Option<String>,
    stats: Option<String>,
    units: bool,
    faults: FaultMap,
    step: StepMode,
}

/// A failed run, carrying the exit status it maps to.
struct RunFailure {
    code: ExitStatus,
    message: String,
}

impl RunFailure {
    fn other(message: String) -> RunFailure {
        RunFailure {
            code: ExitStatus::Runtime,
            message,
        }
    }

    fn from_sim(e: SimError) -> RunFailure {
        RunFailure {
            code: ExitStatus::from(&e),
            message: e.to_string(),
        }
    }
}

/// One-line result summary (cycles, utilization, power, FPGA speedup).
fn summary_line(
    bench: &Bench,
    params: &PlasticineParams,
    out: &plasticine::compiler::CompileOutput,
    r: &SimResult,
) -> String {
    let (pcu, pmu, ag) = out.config.utilization();
    let power = PowerModel::new().estimate(r, &out.config);
    let fpga = FpgaModel::new().estimate(&bench.fpga);
    let speedup = fpga.seconds / r.seconds(params.clock_ghz);
    format!(
        "{:<14} {:>10} cycles  util pcu/pmu/ag {:>4.0}%/{:>4.0}%/{:>4.0}%  {:>5.1} W  vs FPGA {:>6.1}x  [verified]",
        bench.name,
        r.cycles,
        100.0 * pcu,
        100.0 * pmu,
        100.0 * ag,
        power.total_w,
        speedup,
    )
}

/// The stats snapshot written by `--stats-json`, with the benchmark name
/// prepended.
fn stats_with_bench(bench: &Bench, r: &SimResult) -> Json {
    let mut stats = r.stats_json();
    if let Json::Obj(pairs) = &mut stats {
        pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
    }
    stats
}

/// Loads a `compile --out` artifact and recovers the exact program it was
/// compiled from (replaying the degradation log against the benchmark's
/// pristine program).
fn load_artifact(
    path: &str,
    bench: &Bench,
) -> Result<
    (
        plasticine::compiler::CompileOutput,
        plasticine::ppir::Program,
    ),
    RunFailure,
> {
    let b = Bitstream::load(std::path::Path::new(path))
        .map_err(|e| RunFailure::other(format!("loading {path}: {e}")))?;
    if !b.matches_program(&bench.program) {
        return Err(RunFailure::other(format!(
            "{path} was not compiled from `{}` at this scale (artifact program \
             `{}`, hash {:016x})",
            bench.name, b.program_name, b.program_hash
        )));
    }
    let prog = b
        .recover_program(&bench.program)
        .map_err(|e| RunFailure::other(format!("{path}: {e}")))?;
    for note in &b.degradations {
        println!("  degraded: {note}");
    }
    Ok((b.output, prog))
}

fn run_one(bench: &Bench, params: &PlasticineParams, cfg: &RunConfig) -> Result<(), RunFailure> {
    let (out, prog) = match &cfg.config {
        Some(path) => load_artifact(path, bench)?,
        None => {
            let copts = CompileOptions {
                faults: cfg.faults.clone(),
                ..CompileOptions::new()
            };
            let (out, prog, degraded) =
                compile_degraded(&bench.program, params, &copts).map_err(|e| RunFailure {
                    code: ExitStatus::Compile,
                    message: e.to_string(),
                })?;
            for note in &degraded {
                println!("  degraded: {note}");
            }
            (out, prog)
        }
    };
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let opts = SimOptions {
        faults: cfg.faults.clone(),
        step: cfg.step,
        ..SimOptions::default()
    };
    let sim_res = if cfg.trace.is_some() {
        simulate_traced(&prog, &out, &mut m, &opts).map(|(r, t)| (r, Some(t)))
    } else {
        simulate(&prog, &out, &mut m, &opts).map(|r| (r, None))
    };
    let (r, trace): (SimResult, Option<_>) = match sim_res {
        Ok(x) => x,
        Err(SimError::Deadlock(report)) => {
            // The diagnosis embeds the trace up to the deadlock (with
            // instant markers on the blocked units): still write it out.
            if let (Some(path), Some(t)) = (&cfg.trace, &report.trace) {
                let json = t.chrome_trace(&prog);
                match std::fs::write(path, json.pretty()) {
                    Ok(()) => eprintln!("deadlock trace written to {path}"),
                    Err(e) => eprintln!("writing {path}: {e}"),
                }
            }
            return Err(RunFailure::from_sim(SimError::Deadlock(report)));
        }
        Err(e) => return Err(RunFailure::from_sim(e)),
    };
    bench.verify(&m).map_err(RunFailure::other)?;
    println!("{}", summary_line(bench, params, &out, &r));
    if cfg.faults.has_hard_faults() || cfg.faults.transient.any() {
        let f = &r.faults;
        println!(
            "  faults: {}  recovered: ecc={} parity={} lane={} drops={} retries={} (+{} cy backoff, {} recovery cy)",
            cfg.faults.summary(),
            f.ecc_corrected,
            f.parity_replays,
            f.lane_replays,
            f.dram_dropped,
            f.dram_retries,
            f.dram_retry_wait_cycles,
            f.recovery_cycles,
        );
    }
    if cfg.units {
        print_units(&r.units, true);
    }
    if let (Some(path), Some(trace)) = (&cfg.trace, &trace) {
        let json = trace.chrome_trace(&prog);
        std::fs::write(path, json.pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  trace ({} events) written to {path}", trace.events.len());
    }
    if let Some(path) = &cfg.stats {
        std::fs::write(path, stats_with_bench(bench, &r).pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        println!("  stats written to {path}");
    }
    Ok(())
}

/// One `batch` work item: compile through the shared cache, simulate,
/// verify. Returns the text to print (summary line plus any degradation
/// notes), buffered so worker output can be emitted in deterministic
/// order.
fn batch_one(
    bench: &Bench,
    params: &PlasticineParams,
    cache: &CompileCache,
    faults: &FaultMap,
    step: StepMode,
    stats: Option<&str>,
) -> Result<String, RunFailure> {
    let copts = CompileOptions {
        faults: faults.clone(),
        ..CompileOptions::new()
    };
    let cached = cache
        .compile_degraded(&bench.program, params, &copts)
        .map_err(|e| RunFailure {
            code: ExitStatus::Compile,
            message: e.to_string(),
        })?;
    let (out, prog, degraded) = &*cached;
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let opts = SimOptions {
        faults: faults.clone(),
        step,
        ..SimOptions::default()
    };
    let r = simulate(prog, out, &mut m, &opts).map_err(RunFailure::from_sim)?;
    bench.verify(&m).map_err(RunFailure::other)?;
    let mut text = String::new();
    for note in degraded {
        let _ = writeln!(text, "  degraded: {note}");
    }
    let _ = write!(text, "{}", summary_line(bench, params, out, &r));
    if let Some(path) = stats {
        let path = per_bench_path(path, &bench.name);
        std::fs::write(&path, stats_with_bench(bench, &r).pretty())
            .map_err(|e| RunFailure::other(format!("writing {path}: {e}")))?;
        let _ = write!(text, "\n  stats written to {path}");
    }
    Ok(text)
}

/// Runs the batch over `jobs` worker threads sharing one compile cache.
/// Workers pull indices from a shared counter; results are collected by
/// index and printed in input order, so output is identical regardless of
/// scheduling. The exit status is the first (by input order) failure's.
fn run_batch(
    benches: &[Bench],
    params: &PlasticineParams,
    jobs: usize,
    faults: &FaultMap,
    step: StepMode,
    stats: Option<&str>,
) -> ExitCode {
    let cache = CompileCache::new();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<String, RunFailure>>>> =
        Mutex::new((0..benches.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(benches.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bench) = benches.get(i) else {
                    return;
                };
                let res = batch_one(bench, params, &cache, faults, step, stats);
                results.lock().unwrap()[i] = Some(res);
            });
        }
    });
    let results = results.into_inner().unwrap();
    let mut status = ExitStatus::Ok;
    for (bench, res) in benches.iter().zip(results) {
        match res.expect("every index was claimed by a worker") {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{}: {}", bench.name, e.message);
                if status == ExitStatus::Ok {
                    status = e.code;
                }
            }
        }
    }
    println!(
        "batch: {} runs, compile cache {} hits / {} misses",
        benches.len(),
        cache.hits(),
        cache.misses()
    );
    status.into()
}

/// Materializes the fault map a spec describes for the current machine.
fn fault_map(spec: &Option<FaultSpec>, params: &PlasticineParams) -> FaultMap {
    match spec {
        Some(spec) => {
            let topo = Topology::new(params);
            let channels = plasticine::dram::DramConfig::default().channels;
            FaultMap::sample(&topo, spec, channels)
        }
        None => FaultMap::default(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let params = PlasticineParams::paper_final();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                eprintln!("`list` takes no arguments");
                return usage();
            }
            for b in all(Scale(1)) {
                println!("{}", b.name);
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`run` requires a benchmark name before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[2..],
                &[
                    "--scale",
                    "--config",
                    "--trace",
                    "--stats-json",
                    "--units",
                    "--faults",
                    "--step-mode",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            if flags.config.is_some() && name == "all" {
                eprintln!("--config loads one artifact and cannot be combined with `run all`");
                return usage();
            }
            let scale = Scale(flags.scale);
            let benches = if name == "all" {
                all(scale)
            } else {
                match find_bench(name, scale) {
                    Some(b) => vec![b],
                    None => {
                        eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                        return ExitCode::FAILURE;
                    }
                }
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let many = benches.len() > 1;
            for b in &benches {
                let cfg = RunConfig {
                    config: flags.config.clone(),
                    trace: flags.trace.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    stats: flags.stats.as_ref().map(|p| {
                        if many {
                            per_bench_path(p, &b.name)
                        } else {
                            p.clone()
                        }
                    }),
                    units: flags.units,
                    faults: faults.clone(),
                    step: flags.step,
                };
                if let Err(e) = run_one(b, &params, &cfg) {
                    eprintln!("{}: {}", b.name, e.message);
                    return e.code.into();
                }
            }
            ExitCode::SUCCESS
        }
        Some("compile") => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            if name.starts_with("--") {
                eprintln!("`compile` requires a benchmark name before options");
                return usage();
            }
            let flags =
                match parse_flags(&args[2..], &["--scale", "--faults", "--bitstream", "--out"]) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                };
            let Some(bench) = find_bench(name, Scale(flags.scale)) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let copts = CompileOptions {
                faults,
                ..CompileOptions::new()
            };
            let (out, degraded) = match compile_degraded(&bench.program, &params, &copts) {
                Ok((o, _, degraded)) => {
                    for note in &degraded {
                        println!("  degraded: {note}");
                    }
                    (o, degraded)
                }
                Err(e) => {
                    eprintln!("{}: {e}", bench.name);
                    return ExitStatus::Compile.into();
                }
            };
            let cfg: &MachineConfig = &out.config;
            let (pcu, pmu, ag) = cfg.utilization();
            println!(
                "{}: {} PCUs, {} PMUs, {} AGs, {} links  util pcu/pmu/ag {:.0}%/{:.0}%/{:.0}%",
                bench.name,
                cfg.usage.pcus,
                cfg.usage.pmus,
                cfg.usage.ags,
                cfg.links.len(),
                100.0 * pcu,
                100.0 * pmu,
                100.0 * ag,
            );
            println!("pass timings:\n{}", out.timings.summary());
            if let Some(path) = &flags.bitstream {
                if let Err(e) = cfg.save(std::path::Path::new(path)) {
                    eprintln!("saving bitstream: {e}");
                    return ExitCode::FAILURE;
                }
                println!("bitstream written to {path}");
            }
            if let Some(path) = &flags.out {
                let artifact = Bitstream::new(&bench.program, out, degraded);
                if let Err(e) = artifact.save(std::path::Path::new(path)) {
                    eprintln!("saving artifact: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "artifact written to {path} (content hash {:016x})",
                    artifact.content_hash
                );
            }
            ExitCode::SUCCESS
        }
        Some("batch") => {
            let names: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if names.is_empty() {
                eprintln!("`batch` requires benchmark names (or `all`) before options");
                return usage();
            }
            let flags = match parse_flags(
                &args[1 + names.len()..],
                &[
                    "--scale",
                    "--jobs",
                    "--stats-json",
                    "--faults",
                    "--step-mode",
                ],
            ) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let scale = Scale(flags.scale);
            let mut benches = Vec::new();
            for name in names {
                if name == "all" {
                    benches.extend(all(scale));
                } else {
                    match find_bench(name, scale) {
                        Some(b) => benches.push(b),
                        None => {
                            eprintln!("unknown benchmark `{name}` (try `plasticine-run list`)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            let faults = fault_map(&flags.faults, &params);
            if flags.faults.is_some() {
                println!("fault map: {}", faults.summary());
            }
            let jobs = if flags.jobs > 0 {
                flags.jobs
            } else {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            };
            run_batch(
                &benches,
                &params,
                jobs,
                &faults,
                flags.step,
                flags.stats.as_deref(),
            )
        }
        _ => usage(),
    }
}
