//! Wire protocol of `plasticine-run serve`: line-delimited JSON.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry an optional `id` of any JSON
//! shape, echoed verbatim on the response so clients can match
//! out-of-order completions (worker threads finish in whatever order the
//! simulations do).
//!
//! The `status` field of a response is the CLI exit-code contract
//! ([`ExitStatus`]) spelled as a string (`ok`, `runtime`, `usage`,
//! `compile`, `deadlock`, `fault_exhaustion`, `cycle_budget`), plus two
//! service-only statuses that have no one-shot CLI equivalent:
//! `overloaded` (the admission queue was full and the request was shed)
//! and `shutting_down` (the daemon is draining). Both service-only
//! statuses report `code` [`SERVICE_UNAVAILABLE`].

use plasticine_json::Json;
use plasticine_sim::{ExitStatus, StepMode};

/// `code` reported with the service-only `overloaded` / `shutting_down`
/// statuses. Deliberately outside the 0–6 CLI range: a shed request never
/// ran, so it has no exit-code-class outcome.
pub const SERVICE_UNAVAILABLE: i64 = 7;

/// A request operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compile a benchmark through the shared cache (optionally writing
    /// the artifact server-side).
    Compile,
    /// Compile and simulate one benchmark; the response embeds the same
    /// stats object the one-shot CLI writes with `--stats-json`.
    Run,
    /// Run a list of benchmarks sequentially under one deadline.
    Batch,
    /// Report live server metrics. Control-plane: answered inline on the
    /// connection thread, never queued or shed.
    Stats,
    /// Queue a benchmark as a multi-tenant fabric tenant (`rows` ×
    /// `channels` partition request). Answered inline with the tenant id;
    /// the scheduler admits it best-fit when a band frees up.
    Submit,
    /// List every submitted tenant with its phase, band, progress, and
    /// (once done) solo-identical stats. Control-plane.
    Tenants,
    /// Checkpoint a running tenant off the fabric and requeue it
    /// (`tenant` field). Control-plane; replies once the eviction lands.
    Evict,
    /// Drain in-flight requests and exit. Control-plane; the response is
    /// the final stats report, sent after the drain completes.
    Shutdown,
}

impl Op {
    /// Wire name of the operation.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Compile => "compile",
            Op::Run => "run",
            Op::Batch => "batch",
            Op::Stats => "stats",
            Op::Submit => "submit",
            Op::Tenants => "tenants",
            Op::Evict => "evict",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A parsed request. Absent optional fields fall back to the server's
/// command-line defaults (`--scale`, `--step-mode`, …).
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: Option<Json>,
    /// What to do.
    pub op: Op,
    /// Benchmark name for `compile` / `run`.
    pub bench: Option<String>,
    /// Benchmark names for `batch` (`["GEMM", ...]` or `"all"`).
    pub benches: Vec<String>,
    /// Problem-size multiplier.
    pub scale: Option<usize>,
    /// Fault spec in the CLI `--faults` syntax.
    pub faults: Option<String>,
    /// `event` or `cycle`.
    pub step: Option<StepMode>,
    /// Simulator worker threads for this request.
    pub threads: Option<usize>,
    /// Cycle budget for this request.
    pub max_cycles: Option<u64>,
    /// `compile` only: server-side path to write the artifact to.
    pub out: Option<String>,
    /// `submit` only: fabric rows the tenant's partition needs.
    pub rows: Option<usize>,
    /// `submit` only: DRAM-channel share (defaults to 1).
    pub channels: Option<usize>,
    /// `evict` only: the tenant id to evict.
    pub tenant: Option<u64>,
    /// `submit` only: fault-timeline spec in the CLI `--fault-timeline`
    /// syntax, sampled against the tenant's channel share.
    pub timeline: Option<String>,
}

/// Parses one request line. The error string is ready to ship back as a
/// `usage` response.
pub fn parse_request(line: &str) -> Result<Request, (Option<Json>, String)> {
    let j = Json::parse(line).map_err(|e| (None, format!("bad request JSON: {e}")))?;
    let id = j.get("id").cloned();
    let err = |m: String| (id.clone(), m);
    let op = match j.get("op").and_then(Json::as_str) {
        Some("compile") => Op::Compile,
        Some("run") => Op::Run,
        Some("batch") => Op::Batch,
        Some("stats") => Op::Stats,
        Some("submit") => Op::Submit,
        Some("tenants") => Op::Tenants,
        Some("evict") => Op::Evict,
        Some("shutdown") => Op::Shutdown,
        Some(other) => return Err(err(format!("unknown op `{other}`"))),
        None => return Err(err("missing `op` field".to_string())),
    };
    let str_field = |k: &str| -> Result<Option<String>, (Option<Json>, String)> {
        match j.get(k) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| err(format!("`{k}` must be a string"))),
        }
    };
    let bench = str_field("bench")?;
    let mut benches = Vec::new();
    match j.get("benches") {
        None => {}
        Some(Json::Arr(items)) => {
            for it in items {
                match it.as_str() {
                    Some(s) => benches.push(s.to_string()),
                    None => return Err(err("`benches` entries must be strings".to_string())),
                }
            }
        }
        Some(v) => match v.as_str() {
            Some(s) => benches.push(s.to_string()),
            None => {
                return Err(err(
                    "`benches` must be an array of strings or a string".to_string()
                ))
            }
        },
    }
    let scale = match j.get("scale") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("`scale` must be a positive integer".to_string()))?,
        ),
    };
    let threads = match j.get("threads") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("`threads` must be a positive integer".to_string()))?,
        ),
    };
    let max_cycles = match j.get("max_cycles") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("`max_cycles` must be a positive integer".to_string()))?,
        ),
    };
    let step = match j.get("step_mode").map(|v| v.as_str()) {
        None => None,
        Some(Some("event")) => Some(StepMode::Event),
        Some(Some("cycle")) => Some(StepMode::Cycle),
        _ => return Err(err("`step_mode` must be `event` or `cycle`".to_string())),
    };
    let faults = str_field("faults")?;
    let out = str_field("out")?;
    let timeline = str_field("timeline")?;
    let rows = match j.get("rows") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("`rows` must be a positive integer".to_string()))?,
        ),
    };
    let channels = match j.get("channels") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .filter(|&n| n >= 1)
                .ok_or_else(|| err("`channels` must be a positive integer".to_string()))?,
        ),
    };
    let tenant = match j.get("tenant") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| err("`tenant` must be a non-negative integer".to_string()))?,
        ),
    };
    Ok(Request {
        id,
        op,
        bench,
        benches,
        scale,
        faults,
        step,
        threads,
        max_cycles,
        out,
        rows,
        channels,
        tenant,
        timeline,
    })
}

/// Starts a response object: `id` (when the request carried one), `op`,
/// `status`, `code`. Callers append op-specific payload fields.
pub fn response_head(id: &Option<Json>, op: &str, status: &str, code: i64) -> Vec<(String, Json)> {
    let mut pairs = Vec::with_capacity(8);
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    pairs.push(("op".to_string(), Json::from(op)));
    pairs.push(("status".to_string(), Json::from(status)));
    pairs.push(("code".to_string(), Json::from(code)));
    pairs
}

/// A complete error response.
pub fn error_response(id: &Option<Json>, op: &str, status: ExitStatus, message: &str) -> Json {
    let mut pairs = response_head(id, op, status.name(), i64::from(status.code()));
    pairs.push(("error".to_string(), Json::from(message)));
    Json::Obj(pairs)
}

/// The typed shed response: the admission queue was full, the request was
/// rejected immediately (never queued unboundedly), try again later.
pub fn overloaded_response(id: &Option<Json>, op: &str, depth: usize) -> Json {
    let mut pairs = response_head(id, op, "overloaded", SERVICE_UNAVAILABLE);
    pairs.push((
        "error".to_string(),
        Json::from(format!(
            "admission queue full (depth {depth}); request shed"
        )),
    ));
    Json::Obj(pairs)
}

/// The response to data-plane requests that arrive after shutdown began.
pub fn shutting_down_response(id: &Option<Json>, op: &str) -> Json {
    let mut pairs = response_head(id, op, "shutting_down", SERVICE_UNAVAILABLE);
    pairs.push((
        "error".to_string(),
        Json::from("server is draining; request rejected"),
    ));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_run_request() {
        let r = parse_request(
            r#"{"id": 7, "op": "run", "bench": "GEMM", "scale": 2, "threads": 4,
                "max_cycles": 1000, "step_mode": "cycle", "faults": "drop=0.1,seed=3"}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Run);
        assert_eq!(r.bench.as_deref(), Some("GEMM"));
        assert_eq!(r.scale, Some(2));
        assert_eq!(r.threads, Some(4));
        assert_eq!(r.max_cycles, Some(1000));
        assert_eq!(r.step, Some(StepMode::Cycle));
        assert_eq!(r.faults.as_deref(), Some("drop=0.1,seed=3"));
        assert_eq!(r.id.unwrap().as_i64(), Some(7));
    }

    #[test]
    fn parses_tenant_ops() {
        let r = parse_request(r#"{"op": "submit", "bench": "GEMM", "rows": 4, "channels": 2}"#)
            .unwrap();
        assert_eq!(r.op, Op::Submit);
        assert_eq!(r.rows, Some(4));
        assert_eq!(r.channels, Some(2));
        let r = parse_request(r#"{"op": "evict", "tenant": 3}"#).unwrap();
        assert_eq!(r.op, Op::Evict);
        assert_eq!(r.tenant, Some(3));
        assert_eq!(
            parse_request(r#"{"op": "tenants"}"#).unwrap().op,
            Op::Tenants
        );
        let (_, msg) =
            parse_request(r#"{"op": "submit", "bench": "GEMM", "rows": 0}"#).unwrap_err();
        assert!(msg.contains("rows"), "{msg}");
    }

    #[test]
    fn bad_requests_keep_their_id_for_the_error_reply() {
        let (id, msg) = parse_request(r#"{"id": "x1", "op": "fly"}"#).unwrap_err();
        assert_eq!(id.unwrap().as_str(), Some("x1"));
        assert!(msg.contains("unknown op"), "{msg}");
        let (id, _) = parse_request("{ not json").unwrap_err();
        assert!(id.is_none());
        let (_, msg) = parse_request(r#"{"op": "run", "scale": 0}"#).unwrap_err();
        assert!(msg.contains("scale"), "{msg}");
    }

    #[test]
    fn responses_echo_ids_and_carry_the_status_contract() {
        let id = Some(Json::from(3u64));
        let r = error_response(&id, "run", ExitStatus::Deadlock, "stuck");
        assert_eq!(r.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(r.get("status").unwrap().as_str(), Some("deadlock"));
        assert_eq!(r.get("code").unwrap().as_i64(), Some(4));
        let r = overloaded_response(&None, "run", 8);
        assert_eq!(r.get("status").unwrap().as_str(), Some("overloaded"));
        assert_eq!(r.get("code").unwrap().as_i64(), Some(SERVICE_UNAVAILABLE));
        assert!(r.get("id").is_none());
    }
}
