//! Live metrics for the serve daemon: per-status counters, shed count,
//! in-flight gauge, and request-latency percentiles.
//!
//! Everything here is observability, not simulation state, so nothing in
//! it may influence a response payload — the byte-identity contract (a
//! served `run` equals the one-shot CLI) would otherwise break. Latencies
//! are recorded in milliseconds and percentiles use the nearest-rank
//! method over the most recent [`MAX_LATENCY_SAMPLES`] requests (a
//! bounded ring buffer, so a long-lived daemon's p50/p99 track current
//! behavior rather than its first 100k requests forever).

use plasticine_json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples kept for percentile computation. Once this many are
/// recorded the buffer becomes a ring and each new sample overwrites the
/// oldest (the daemon is long-lived; an unbounded vector would be its own
/// robustness bug), so percentiles always describe the most recent
/// `MAX_LATENCY_SAMPLES` requests.
pub const MAX_LATENCY_SAMPLES: usize = 100_000;

#[derive(Default)]
struct Inner {
    by_status: BTreeMap<String, u64>,
    /// Ring buffer of the most recent latency samples; `next` is the slot
    /// the next sample lands in once the buffer has filled. Deterministic:
    /// the retained window depends only on the sequence of `finish` calls.
    latencies_ms: Vec<u64>,
    next: usize,
    served: u64,
    shed: u64,
}

/// Thread-safe request accounting shared by every worker and connection.
pub struct Metrics {
    start: Instant,
    in_flight: AtomicUsize,
    inner: Mutex<Inner>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; uptime counts from here.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            in_flight: AtomicUsize::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A request entered execution.
    pub fn begin(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A request finished with `status` after `latency`; pairs with
    /// [`begin`](Self::begin).
    pub fn finish(&self, status: &str, latency: Duration) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let mut g = self.inner.lock().unwrap();
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.served += 1;
        let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        if g.latencies_ms.len() < MAX_LATENCY_SAMPLES {
            g.latencies_ms.push(ms);
        } else {
            let slot = g.next;
            g.latencies_ms[slot] = ms;
            g.next = (slot + 1) % MAX_LATENCY_SAMPLES;
        }
    }

    /// A request was rejected at admission (queue full or draining)
    /// without ever executing.
    pub fn record_shed(&self, status: &str) {
        let mut g = self.inner.lock().unwrap();
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.shed += 1;
    }

    /// A request answered inline on the connection thread without ever
    /// queuing (protocol errors): counted as served under `status`, with
    /// no latency sample — it never reached a worker.
    pub fn record_inline(&self, status: &str) {
        let mut g = self.inner.lock().unwrap();
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.served += 1;
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.inner.lock().unwrap().shed
    }

    /// Requests currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The stats payload: uptime, served/shed/in-flight/queue counters,
    /// compile-cache hit rate, latency percentiles, and per-status counts.
    pub fn snapshot(&self, queue_len: usize, cache_hits: usize, cache_misses: usize) -> Json {
        let g = self.inner.lock().unwrap();
        let mut sorted = g.latencies_ms.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let by_status: Vec<(String, Json)> = g
            .by_status
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect();
        Json::obj([
            (
                "uptime_ms",
                Json::from(u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)),
            ),
            ("served", Json::from(g.served)),
            ("shed", Json::from(g.shed)),
            (
                "in_flight",
                Json::from(self.in_flight.load(Ordering::Relaxed)),
            ),
            ("queue_len", Json::from(queue_len)),
            ("cache_hits", Json::from(cache_hits)),
            ("cache_misses", Json::from(cache_misses)),
            ("latency_p50_ms", Json::from(pct(0.50))),
            ("latency_p99_ms", Json::from(pct(0.99))),
            (
                "latency_max_ms",
                Json::from(sorted.last().copied().unwrap_or(0)),
            ),
            ("by_status", Json::Obj(by_status)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_are_consistent() {
        let m = Metrics::new();
        for ms in [10u64, 20, 30, 40, 1000] {
            m.begin();
            m.finish("ok", Duration::from_millis(ms));
        }
        m.begin();
        m.finish("deadlock", Duration::from_millis(5));
        m.record_shed("overloaded");
        m.record_shed("overloaded");
        let s = m.snapshot(3, 10, 2);
        assert_eq!(s.get("served").unwrap().as_u64(), Some(6));
        assert_eq!(s.get("shed").unwrap().as_u64(), Some(2));
        assert_eq!(s.get("in_flight").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("queue_len").unwrap().as_u64(), Some(3));
        let by = s.get("by_status").unwrap();
        assert_eq!(by.get("ok").unwrap().as_u64(), Some(5));
        assert_eq!(by.get("deadlock").unwrap().as_u64(), Some(1));
        assert_eq!(by.get("overloaded").unwrap().as_u64(), Some(2));
        // Nearest-rank p50 of [5,10,20,30,40,1000] is the 3rd value.
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(20));
        assert_eq!(s.get("latency_p99_ms").unwrap().as_u64(), Some(1000));
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn latency_window_slides_after_saturation() {
        let m = Metrics::new();
        // Saturate the reservoir with fast requests...
        for _ in 0..MAX_LATENCY_SAMPLES {
            m.begin();
            m.finish("ok", Duration::from_millis(1));
        }
        // ...then degrade. The pre-fix reservoir dropped everything after
        // saturation, so the snapshot kept reporting 1 ms forever.
        for _ in 0..MAX_LATENCY_SAMPLES / 2 {
            m.begin();
            m.finish("ok", Duration::from_millis(1000));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(1000));
        // Half the retained window is now slow: nearest-rank p99 must see
        // the degradation, and the window must stay bounded.
        assert_eq!(s.get("latency_p99_ms").unwrap().as_u64(), Some(1000));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(1));
        assert_eq!(
            s.get("served").unwrap().as_u64(),
            Some(3 * MAX_LATENCY_SAMPLES as u64 / 2),
            "counters keep counting past the sample bound"
        );
        // Wrap fully around: the oldest slow samples get overwritten too.
        for _ in 0..MAX_LATENCY_SAMPLES {
            m.begin();
            m.finish("ok", Duration::from_millis(7));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(7));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn empty_metrics_report_zeroes() {
        let m = Metrics::new();
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("served").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(0));
    }
}
