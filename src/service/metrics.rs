//! Live metrics for the serve daemon: per-status counters, shed count,
//! in-flight gauge, and request-latency percentiles.
//!
//! Everything here is observability, not simulation state, so nothing in
//! it may influence a response payload — the byte-identity contract (a
//! served `run` equals the one-shot CLI) would otherwise break. Latencies
//! are recorded in milliseconds and percentiles use the nearest-rank
//! method over the most recent [`MAX_LATENCY_SAMPLES`] requests (a
//! bounded ring buffer, so a long-lived daemon's p50/p99 track current
//! behavior rather than its first 100k requests forever).

use plasticine_json::Json;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples kept for percentile computation. Once this many are
/// recorded the buffer becomes a ring and each new sample overwrites the
/// oldest (the daemon is long-lived; an unbounded vector would be its own
/// robustness bug), so percentiles always describe the most recent
/// `MAX_LATENCY_SAMPLES` requests.
pub const MAX_LATENCY_SAMPLES: usize = 100_000;

/// A multi-tenant scheduler event, counted per benchmark name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantEvent {
    /// A `submit` request queued the tenant.
    Submitted,
    /// The scheduler placed the tenant on a fabric band.
    Admitted,
    /// The tenant ran to completion and verified.
    Completed,
    /// An `evict` request checkpointed the tenant off the fabric.
    Evicted,
    /// The scheduler preempted the tenant for a larger arrival.
    Preempted,
    /// The tenant failed (compile, simulation, or verification).
    Failed,
    /// A fault arrival degraded the tenant's fabric band mid-run; the
    /// scheduler checkpointed it off for healing.
    Degraded,
    /// A degraded tenant resumed (possibly on a relocated band).
    Healed,
}

/// Per-benchmark tenant counters (see [`TenantEvent`]).
#[derive(Default, Clone)]
struct TenantCounts {
    submitted: u64,
    admitted: u64,
    completed: u64,
    evicted: u64,
    preempted: u64,
    failed: u64,
    degraded: u64,
    healed: u64,
}

#[derive(Default)]
struct Inner {
    by_status: BTreeMap<String, u64>,
    /// Ring buffer of the most recent latency samples; `next` is the slot
    /// the next sample lands in once the buffer has filled. Deterministic:
    /// the retained window depends only on the sequence of `finish` calls.
    latencies_ms: Vec<u64>,
    next: usize,
    served: u64,
    shed: u64,
    /// Requests currently executing. Lives under the same lock as every
    /// other counter so any snapshot is internally consistent: a request
    /// leaving flight and landing in `by_status`/`served` is one critical
    /// section, never observable half-done (the `stats`-during-drain
    /// race).
    in_flight: usize,
    /// Multi-tenant scheduler counters, keyed by benchmark name — same
    /// lock, same consistency argument.
    tenants: BTreeMap<String, TenantCounts>,
}

/// Thread-safe request accounting shared by every worker and connection.
pub struct Metrics {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; uptime counts from here.
    pub fn new() -> Metrics {
        Metrics {
            start: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// A request entered execution.
    pub fn begin(&self) {
        self.inner.lock().unwrap().in_flight += 1;
    }

    /// A request finished with `status` after `latency`; pairs with
    /// [`begin`](Self::begin). The flight decrement and the status/served
    /// increments are one critical section: a concurrent snapshot sees
    /// the request either still in flight or fully counted, never lost
    /// between the two.
    pub fn finish(&self, status: &str, latency: Duration) {
        let mut g = self.inner.lock().unwrap();
        g.in_flight -= 1;
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.served += 1;
        let ms = u64::try_from(latency.as_millis()).unwrap_or(u64::MAX);
        if g.latencies_ms.len() < MAX_LATENCY_SAMPLES {
            g.latencies_ms.push(ms);
        } else {
            let slot = g.next;
            g.latencies_ms[slot] = ms;
            g.next = (slot + 1) % MAX_LATENCY_SAMPLES;
        }
    }

    /// A request was rejected at admission (queue full or draining)
    /// without ever executing.
    pub fn record_shed(&self, status: &str) {
        let mut g = self.inner.lock().unwrap();
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.shed += 1;
    }

    /// A request answered inline on the connection thread without ever
    /// queuing (protocol errors): counted as served under `status`, with
    /// no latency sample — it never reached a worker.
    pub fn record_inline(&self, status: &str) {
        let mut g = self.inner.lock().unwrap();
        *g.by_status.entry(status.to_string()).or_insert(0) += 1;
        g.served += 1;
    }

    /// A multi-tenant scheduler event for `bench`.
    pub fn record_tenant(&self, bench: &str, ev: TenantEvent) {
        let mut g = self.inner.lock().unwrap();
        let c = g.tenants.entry(bench.to_string()).or_default();
        match ev {
            TenantEvent::Submitted => c.submitted += 1,
            TenantEvent::Admitted => c.admitted += 1,
            TenantEvent::Completed => c.completed += 1,
            TenantEvent::Evicted => c.evicted += 1,
            TenantEvent::Preempted => c.preempted += 1,
            TenantEvent::Failed => c.failed += 1,
            TenantEvent::Degraded => c.degraded += 1,
            TenantEvent::Healed => c.healed += 1,
        }
    }

    /// Requests shed so far.
    pub fn shed(&self) -> u64 {
        self.inner.lock().unwrap().shed
    }

    /// Requests currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().unwrap().in_flight
    }

    /// The stats payload: uptime, served/shed/in-flight/queue counters,
    /// compile-cache hit rate, latency percentiles, and per-status counts.
    pub fn snapshot(&self, queue_len: usize, cache_hits: usize, cache_misses: usize) -> Json {
        let g = self.inner.lock().unwrap();
        let mut sorted = g.latencies_ms.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let by_status: Vec<(String, Json)> = g
            .by_status
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(*v)))
            .collect();
        let mut pairs = vec![
            (
                "uptime_ms".to_string(),
                Json::from(u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)),
            ),
            ("served".to_string(), Json::from(g.served)),
            ("shed".to_string(), Json::from(g.shed)),
            ("in_flight".to_string(), Json::from(g.in_flight)),
            ("queue_len".to_string(), Json::from(queue_len)),
            ("cache_hits".to_string(), Json::from(cache_hits)),
            ("cache_misses".to_string(), Json::from(cache_misses)),
            ("latency_p50_ms".to_string(), Json::from(pct(0.50))),
            ("latency_p99_ms".to_string(), Json::from(pct(0.99))),
            (
                "latency_max_ms".to_string(),
                Json::from(sorted.last().copied().unwrap_or(0)),
            ),
            ("by_status".to_string(), Json::Obj(by_status)),
        ];
        if !g.tenants.is_empty() {
            let tenants: Vec<(String, Json)> = g
                .tenants
                .iter()
                .map(|(k, c)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("submitted", Json::from(c.submitted)),
                            ("admitted", Json::from(c.admitted)),
                            ("completed", Json::from(c.completed)),
                            ("evicted", Json::from(c.evicted)),
                            ("preempted", Json::from(c.preempted)),
                            ("failed", Json::from(c.failed)),
                            ("degraded", Json::from(c.degraded)),
                            ("healed", Json::from(c.healed)),
                        ]),
                    )
                })
                .collect();
            pairs.push(("tenants".to_string(), Json::Obj(tenants)));
        }
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_percentiles_are_consistent() {
        let m = Metrics::new();
        for ms in [10u64, 20, 30, 40, 1000] {
            m.begin();
            m.finish("ok", Duration::from_millis(ms));
        }
        m.begin();
        m.finish("deadlock", Duration::from_millis(5));
        m.record_shed("overloaded");
        m.record_shed("overloaded");
        let s = m.snapshot(3, 10, 2);
        assert_eq!(s.get("served").unwrap().as_u64(), Some(6));
        assert_eq!(s.get("shed").unwrap().as_u64(), Some(2));
        assert_eq!(s.get("in_flight").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("queue_len").unwrap().as_u64(), Some(3));
        let by = s.get("by_status").unwrap();
        assert_eq!(by.get("ok").unwrap().as_u64(), Some(5));
        assert_eq!(by.get("deadlock").unwrap().as_u64(), Some(1));
        assert_eq!(by.get("overloaded").unwrap().as_u64(), Some(2));
        // Nearest-rank p50 of [5,10,20,30,40,1000] is the 3rd value.
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(20));
        assert_eq!(s.get("latency_p99_ms").unwrap().as_u64(), Some(1000));
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn latency_window_slides_after_saturation() {
        let m = Metrics::new();
        // Saturate the reservoir with fast requests...
        for _ in 0..MAX_LATENCY_SAMPLES {
            m.begin();
            m.finish("ok", Duration::from_millis(1));
        }
        // ...then degrade. The pre-fix reservoir dropped everything after
        // saturation, so the snapshot kept reporting 1 ms forever.
        for _ in 0..MAX_LATENCY_SAMPLES / 2 {
            m.begin();
            m.finish("ok", Duration::from_millis(1000));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(1000));
        // Half the retained window is now slow: nearest-rank p99 must see
        // the degradation, and the window must stay bounded.
        assert_eq!(s.get("latency_p99_ms").unwrap().as_u64(), Some(1000));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(1));
        assert_eq!(
            s.get("served").unwrap().as_u64(),
            Some(3 * MAX_LATENCY_SAMPLES as u64 / 2),
            "counters keep counting past the sample bound"
        );
        // Wrap fully around: the oldest slow samples get overwritten too.
        for _ in 0..MAX_LATENCY_SAMPLES {
            m.begin();
            m.finish("ok", Duration::from_millis(7));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("latency_max_ms").unwrap().as_u64(), Some(7));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn empty_metrics_report_zeroes() {
        let m = Metrics::new();
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.get("served").unwrap().as_u64(), Some(0));
        assert_eq!(s.get("latency_p50_ms").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn tenant_counters_aggregate_per_bench() {
        let m = Metrics::new();
        m.record_tenant("GEMM", TenantEvent::Submitted);
        m.record_tenant("GEMM", TenantEvent::Admitted);
        m.record_tenant("GEMM", TenantEvent::Preempted);
        m.record_tenant("GEMM", TenantEvent::Admitted);
        m.record_tenant("GEMM", TenantEvent::Completed);
        m.record_tenant("BFS", TenantEvent::Submitted);
        m.record_tenant("BFS", TenantEvent::Failed);
        let s = m.snapshot(0, 0, 0);
        let t = s.get("tenants").unwrap();
        let g = t.get("GEMM").unwrap();
        assert_eq!(g.get("submitted").unwrap().as_u64(), Some(1));
        assert_eq!(g.get("admitted").unwrap().as_u64(), Some(2));
        assert_eq!(g.get("preempted").unwrap().as_u64(), Some(1));
        assert_eq!(g.get("completed").unwrap().as_u64(), Some(1));
        let b = t.get("BFS").unwrap();
        assert_eq!(b.get("failed").unwrap().as_u64(), Some(1));
        // No tenants → no tenants key (legacy stats shape preserved).
        assert!(Metrics::new().snapshot(0, 0, 0).get("tenants").is_none());
    }

    /// Regression test for the stats-during-drain race: `finish` used to
    /// decrement an *atomic* in-flight gauge before taking the counter
    /// lock, so a concurrent snapshot could observe a request that was
    /// neither in flight nor counted in `served`/`by_status` — the final
    /// stats report raced the drain. With every counter under one lock,
    /// `served + in_flight` is exactly the number of `begin` calls so
    /// far, which is monotone; any observed decrease is the torn state.
    #[test]
    fn snapshot_is_consistent_against_concurrent_finish() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        m.begin();
                        m.finish("ok", Duration::from_millis(1));
                        m.record_tenant("GEMM", TenantEvent::Completed);
                    }
                })
            })
            .collect();
        let mut last = 0u64;
        for _ in 0..2000 {
            let s = m.snapshot(0, 0, 0);
            let served = s.get("served").unwrap().as_u64().unwrap();
            let in_flight = s.get("in_flight").unwrap().as_u64().unwrap();
            let begun = served + in_flight;
            assert!(
                begun >= last,
                "snapshot lost a request: served+in_flight fell {last} -> {begun}"
            );
            // Per-status counts must agree with the aggregates in the
            // same snapshot — they are read under one lock.
            let by: u64 = match s.get("by_status").unwrap() {
                Json::Obj(pairs) => pairs.iter().filter_map(|(_, v)| v.as_u64()).sum(),
                _ => unreachable!(),
            };
            let shed = s.get("shed").unwrap().as_u64().unwrap();
            assert_eq!(by, served + shed, "per-status counts tore");
            last = begun;
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }
}
