//! Plasticine-as-a-service: the crash-isolated `plasticine-run serve`
//! daemon.
//!
//! A long-lived process that accepts line-delimited JSON requests over
//! stdin/stdout and (optionally) a Unix socket, sharing one compile cache
//! across every client. See [`proto`] for the wire format, [`server`] for
//! admission control, containment, and drain semantics, and DESIGN.md §13
//! for the full protocol narrative.
//!
//! The helpers at this level ([`stats_with_bench`], [`checkpoint_path`],
//! [`env_lists_bench`], [`jittered_backoff_ms`]) are shared between the
//! daemon and the one-shot CLI binary so their behavior cannot drift
//! apart — the byte-identity contract (a served `run`'s stats equal the
//! one-shot `--stats-json` output) depends on it.

pub mod fabric;
pub mod metrics;
pub mod proto;
mod server;

pub use server::{serve, RequestDefaults, ServeOptions};

use plasticine_arch::FaultRng;
use plasticine_json::hash::fnv1a_str;
use plasticine_json::Json;
use plasticine_sim::SimResult;
use plasticine_workloads::Bench;
use std::path::{Path, PathBuf};

/// The stats snapshot written by `--stats-json` and embedded in served
/// `run` responses, with the benchmark name prepended. Both consumers
/// call this one function, so the two outputs are byte-identical by
/// construction.
pub fn stats_with_bench(bench: &Bench, r: &SimResult) -> Json {
    let mut stats = r.stats_json();
    if let Json::Obj(pairs) = &mut stats {
        pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
    }
    stats
}

/// Where a benchmark's checkpoint lives: `<dir>/<bench>.ckpt.json`,
/// overwritten at every emission so the newest snapshot always wins.
pub fn checkpoint_path(dir: &str, bench: &str) -> PathBuf {
    Path::new(dir).join(format!("{}.ckpt.json", bench.to_ascii_lowercase()))
}

/// Is `bench` named in the comma-separated env var `var`? Test hook used
/// by the supervisor and service CI jobs to inject a panicking and a
/// hanging worker.
pub fn env_lists_bench(var: &str, bench: &str) -> bool {
    std::env::var(var).is_ok_and(|v| v.split(',').any(|n| n.trim().eq_ignore_ascii_case(bench)))
}

/// Backoff before retry `attempt` (1-based) of the job named `key`:
/// `50ms << min(attempt-1, 6)` plus a deterministic jitter in
/// `[0, base/2]` drawn from a [`FaultRng`] seeded by
/// `(seed, key, attempt)`. The jitter desynchronizes workers that fail in
/// lockstep (same fault spec, same wall-clock) without sacrificing
/// reproducibility: the same seed, job, and attempt always wait the same
/// number of milliseconds.
pub fn jittered_backoff_ms(seed: u64, key: &str, attempt: u32) -> u64 {
    let base = 50u64 << u64::from(attempt - 1).min(6);
    let mut rng = FaultRng::new(seed ^ fnv1a_str(key) ^ u64::from(attempt));
    base + rng.below(base / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_deterministic() {
        let a1 = jittered_backoff_ms(3, "GEMM", 1);
        let a2 = jittered_backoff_ms(3, "GEMM", 2);
        let a3 = jittered_backoff_ms(3, "GEMM", 3);
        // Base doubles 50 → 100 → 200; jitter adds at most base/2, so the
        // sequence is strictly increasing and bounded.
        assert!((50..=75).contains(&a1), "{a1}");
        assert!((100..=150).contains(&a2), "{a2}");
        assert!((200..=300).contains(&a3), "{a3}");
        // Deterministic: same (seed, key, attempt) → same wait.
        assert_eq!(a1, jittered_backoff_ms(3, "GEMM", 1));
        // Different jobs (or seeds) desynchronize.
        assert!(
            jittered_backoff_ms(3, "GEMM", 1) != jittered_backoff_ms(3, "BFS", 1)
                || jittered_backoff_ms(3, "GEMM", 2) != jittered_backoff_ms(3, "BFS", 2),
            "jitter failed to separate two jobs across two attempts"
        );
    }

    #[test]
    fn backoff_shift_saturates() {
        // Attempt 40 must not overflow the shift; cap is 50 << 6.
        let b = jittered_backoff_ms(0, "x", 40);
        assert!((3200..=4800).contains(&b), "{b}");
    }
}
