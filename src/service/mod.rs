//! Plasticine-as-a-service: the crash-isolated `plasticine-run serve`
//! daemon.
//!
//! A long-lived process that accepts line-delimited JSON requests over
//! stdin/stdout and (optionally) a Unix socket, sharing one compile cache
//! across every client. See [`proto`] for the wire format, [`server`] for
//! admission control, containment, and drain semantics, and DESIGN.md §13
//! for the full protocol narrative.
//!
//! The helpers at this level ([`stats_with_bench`], [`checkpoint_path`],
//! the [`emit_checkpoint`]/[`latest_checkpoint`]/[`prune_checkpoints`]
//! retention family, [`env_lists_bench`], [`jittered_backoff_ms`]) are
//! shared between the
//! daemon and the one-shot CLI binary so their behavior cannot drift
//! apart — the byte-identity contract (a served `run`'s stats equal the
//! one-shot `--stats-json` output) depends on it.

pub mod fabric;
pub mod metrics;
pub mod proto;
mod server;

pub use server::{serve, RequestDefaults, ServeOptions};

use plasticine_arch::FaultRng;
use plasticine_json::hash::fnv1a_str;
use plasticine_json::Json;
use plasticine_sim::SimResult;
use plasticine_workloads::Bench;
use std::path::{Path, PathBuf};

/// The stats snapshot written by `--stats-json` and embedded in served
/// `run` responses, with the benchmark name prepended. Both consumers
/// call this one function, so the two outputs are byte-identical by
/// construction.
pub fn stats_with_bench(bench: &Bench, r: &SimResult) -> Json {
    let mut stats = r.stats_json();
    if let Json::Obj(pairs) = &mut stats {
        pairs.insert(0, ("bench".to_string(), Json::from(bench.name.clone())));
    }
    stats
}

/// The legacy single-slot checkpoint path: `<dir>/<bench>.ckpt.json`.
/// Kept as a resume fallback so snapshots written by older builds still
/// load; new emissions go to cycle-stamped files ([`checkpoint_file`])
/// pruned by [`prune_checkpoints`].
pub fn checkpoint_path(dir: &str, bench: &str) -> PathBuf {
    Path::new(dir).join(format!("{}.ckpt.json", bench.to_ascii_lowercase()))
}

/// A cycle-stamped auto-checkpoint: `<dir>/<bench>-c<cycle:012>.ckpt.json`.
/// The zero-padded stamp makes lexical order equal cycle order, so
/// retention and "latest" scans need no parsing beyond the prefix.
pub fn checkpoint_file(dir: &str, bench: &str, cycle: u64) -> PathBuf {
    Path::new(dir).join(format!(
        "{}-c{cycle:012}.ckpt.json",
        bench.to_ascii_lowercase()
    ))
}

/// Writes a checkpoint through a temp file + rename so a crash mid-write
/// can never leave a torn snapshot under the final name.
pub fn save_checkpoint_atomic(c: &plasticine_sim::Checkpoint, path: &Path) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    c.save(&tmp).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming {}: {e}", path.display()))
}

/// Every cycle-stamped checkpoint for `bench` in `dir`, sorted oldest
/// first (lexical order = cycle order).
fn stamped_checkpoints(dir: &str, bench: &str) -> Vec<PathBuf> {
    let prefix = format!("{}-c", bench.to_ascii_lowercase());
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".ckpt.json"))
        })
        .collect();
    found.sort();
    found
}

/// The newest resumable checkpoint for `bench` in `dir`: the highest
/// cycle-stamped file, falling back to the legacy fixed-name slot.
pub fn latest_checkpoint(dir: &str, bench: &str) -> Option<PathBuf> {
    if let Some(p) = stamped_checkpoints(dir, bench).pop() {
        return Some(p);
    }
    let legacy = checkpoint_path(dir, bench);
    legacy.exists().then_some(legacy)
}

/// Persists one auto-checkpoint emission with bounded retention: writes
/// the cycle-stamped history file, refreshes the legacy fixed-name slot
/// (the newest snapshot always wins there — it is what
/// `--resume <bench>.ckpt.json`, batch resume, and older tooling read),
/// and prunes history beyond `keep`. Both writes go through a temp file +
/// rename, so a crash mid-emission never leaves a torn snapshot. Returns
/// the stamped path.
pub fn emit_checkpoint(
    dir: &str,
    bench: &str,
    keep: usize,
    c: &plasticine_sim::Checkpoint,
) -> Result<PathBuf, String> {
    let stamped = checkpoint_file(dir, bench, c.cycle);
    save_checkpoint_atomic(c, &stamped)?;
    let legacy = checkpoint_path(dir, bench);
    let tmp = legacy.with_extension("json.new");
    std::fs::copy(&stamped, &tmp)
        .map_err(|e| format!("copying {} -> {}: {e}", stamped.display(), tmp.display()))?;
    std::fs::rename(&tmp, &legacy).map_err(|e| format!("renaming {}: {e}", legacy.display()))?;
    prune_checkpoints(dir, bench, keep);
    Ok(stamped)
}

/// Bounds `--checkpoint-dir` growth: deletes all but the newest `keep`
/// cycle-stamped checkpoints for `bench` (each removal is an atomic
/// unlink; a concurrently-vanished file is not an error). `keep == 0` is
/// clamped to 1 — pruning must never delete the snapshot just written.
/// Returns how many files were removed.
pub fn prune_checkpoints(dir: &str, bench: &str, keep: usize) -> usize {
    let keep = keep.max(1);
    let files = stamped_checkpoints(dir, bench);
    let excess = files.len().saturating_sub(keep);
    files[..excess]
        .iter()
        .filter(|p| std::fs::remove_file(p).is_ok())
        .count()
}

/// Is `bench` named in the comma-separated env var `var`? Test hook used
/// by the supervisor and service CI jobs to inject a panicking and a
/// hanging worker.
pub fn env_lists_bench(var: &str, bench: &str) -> bool {
    std::env::var(var).is_ok_and(|v| v.split(',').any(|n| n.trim().eq_ignore_ascii_case(bench)))
}

/// Backoff before retry `attempt` (1-based) of the job named `key`:
/// `50ms << min(attempt-1, 6)` plus a deterministic jitter in
/// `[0, base/2]` drawn from a [`FaultRng`] seeded by
/// `(seed, key, attempt)`. The jitter desynchronizes workers that fail in
/// lockstep (same fault spec, same wall-clock) without sacrificing
/// reproducibility: the same seed, job, and attempt always wait the same
/// number of milliseconds.
pub fn jittered_backoff_ms(seed: u64, key: &str, attempt: u32) -> u64 {
    let base = 50u64 << u64::from(attempt - 1).min(6);
    let mut rng = FaultRng::new(seed ^ fnv1a_str(key) ^ u64::from(attempt));
    base + rng.below(base / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_jittered_and_deterministic() {
        let a1 = jittered_backoff_ms(3, "GEMM", 1);
        let a2 = jittered_backoff_ms(3, "GEMM", 2);
        let a3 = jittered_backoff_ms(3, "GEMM", 3);
        // Base doubles 50 → 100 → 200; jitter adds at most base/2, so the
        // sequence is strictly increasing and bounded.
        assert!((50..=75).contains(&a1), "{a1}");
        assert!((100..=150).contains(&a2), "{a2}");
        assert!((200..=300).contains(&a3), "{a3}");
        // Deterministic: same (seed, key, attempt) → same wait.
        assert_eq!(a1, jittered_backoff_ms(3, "GEMM", 1));
        // Different jobs (or seeds) desynchronize.
        assert!(
            jittered_backoff_ms(3, "GEMM", 1) != jittered_backoff_ms(3, "BFS", 1)
                || jittered_backoff_ms(3, "GEMM", 2) != jittered_backoff_ms(3, "BFS", 2),
            "jitter failed to separate two jobs across two attempts"
        );
    }

    #[test]
    fn backoff_shift_saturates() {
        // Attempt 40 must not overflow the shift; cap is 50 << 6.
        let b = jittered_backoff_ms(0, "x", 40);
        assert!((3200..=4800).contains(&b), "{b}");
    }
}
