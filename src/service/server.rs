//! The long-lived daemon: admission control, worker pool, transports,
//! graceful drain.
//!
//! ## Robustness by construction
//!
//! Every data-plane request (`compile`/`run`/`batch`) executes on a
//! dedicated attempt thread under `catch_unwind` with a wall-clock
//! deadline measured from *admission* — the same containment machinery as
//! the batch supervisor. A panicking request becomes a typed `runtime`
//! response; a hung request is abandoned at its deadline and becomes a
//! typed `runtime` response; in both cases the worker thread survives and
//! keeps serving.
//!
//! ## Admission control
//!
//! The request queue is bounded (`--queue-depth`). A request that arrives
//! while the queue is full is shed *immediately* with a typed
//! `overloaded` response — the daemon never queues unboundedly, so memory
//! stays flat no matter how hard clients push. Control-plane requests
//! (`stats`, `shutdown`) bypass the queue and are answered on the
//! connection thread, so observability keeps working under overload.
//!
//! ## Graceful degradation
//!
//! A `run` that fails with transient-fault exhaustion is retried with
//! bounded exponential backoff (jittered deterministically from the fault
//! seed so synchronized workers do not stampede), then — still failing —
//! degraded: the program's largest parallelization factor is halved and
//! the run re-attempted through the shared compile cache, repeating until
//! it succeeds or no parallelism is left. A degraded success reports
//! `recovery: "compile_degraded"` with the reduction notes.
//!
//! ## Shutdown
//!
//! `shutdown` (or stdin EOF when stdio is the only transport) stops
//! admission, drains queued and in-flight requests (each bounded by its
//! deadline), joins the workers, and sends the final stats report as the
//! shutdown response.

use super::fabric::{self, FabricScheduler, SubmitSpec};
use super::metrics::{Metrics, TenantEvent};
use super::proto::{
    error_response, overloaded_response, parse_request, response_head, shutting_down_response, Op,
    Request,
};
use super::{checkpoint_path, env_lists_bench, jittered_backoff_ms, stats_with_bench};
use plasticine_arch::{
    FaultMap, FaultSpec, FaultTimeline, FaultTimelineSpec, PlasticineParams, Topology,
};
use plasticine_compiler::{Bitstream, CompileCache, CompileOptions};
use plasticine_json::Json;
use plasticine_ppir::{Machine, Program};
use plasticine_sim::{
    simulate, simulate_checkpointed, Checkpoint, CheckpointPolicy, ExitStatus, SimError,
    SimOptions, SimResult, StepMode,
};
use plasticine_workloads::{all, Bench, Scale};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-request option defaults, set on the `serve` command line and
/// overridable per request (except the checkpoint settings, which are
/// operator policy).
#[derive(Debug, Clone)]
pub struct RequestDefaults {
    /// Problem-size multiplier when a request names none.
    pub scale: usize,
    /// Step mode when a request names none.
    pub step: StepMode,
    /// Simulator threads per request when a request names none.
    pub threads: usize,
    /// Cycle budget when a request names none (`None` = simulator
    /// default).
    pub max_cycles: Option<u64>,
    /// Fault spec applied when a request carries none.
    pub faults: Option<FaultSpec>,
    /// Cadence for periodic checkpoints of served simulations.
    pub checkpoint_every: Option<u64>,
    /// Where served simulations checkpoint. Setting either checkpoint
    /// field opts every served `run` into the auto-checkpoint path:
    /// budget/watchdog failures and deadline-abandoned requests leave
    /// resumable snapshots behind (cycle-stamped history files plus the
    /// legacy `<dir>/<bench>.ckpt.json` slot, which always holds the
    /// newest snapshot — concurrent same-bench requests share it,
    /// last-writer-wins).
    pub checkpoint_dir: Option<String>,
    /// How many cycle-stamped auto-checkpoints to retain per benchmark
    /// (`--checkpoint-keep`; older ones are pruned atomically).
    pub checkpoint_keep: usize,
}

impl Default for RequestDefaults {
    fn default() -> RequestDefaults {
        RequestDefaults {
            scale: 1,
            step: StepMode::default(),
            threads: 1,
            max_cycles: None,
            faults: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            checkpoint_keep: 3,
        }
    }
}

/// Daemon configuration (the `serve` command line).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads executing data-plane requests.
    pub workers: usize,
    /// Admission-queue depth; requests beyond it are shed with
    /// `overloaded`.
    pub queue_depth: usize,
    /// Per-request wall-clock deadline, measured from admission.
    pub deadline: Duration,
    /// Extra attempts for a `run` failing with fault exhaustion, before
    /// degrading.
    pub retries: u32,
    /// Unix-socket path to listen on, in addition to stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Per-request defaults.
    pub defaults: RequestDefaults,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        let workers = std::thread::available_parallelism().map_or(2, |n| n.get());
        ServeOptions {
            workers,
            queue_depth: 2 * workers.max(2),
            deadline: Duration::from_millis(60_000),
            retries: 2,
            socket: None,
            defaults: RequestDefaults::default(),
        }
    }
}

/// A connection's write half; responses from any worker serialize through
/// the mutex, one line per response.
#[derive(Clone)]
struct Reply(Arc<Mutex<Box<dyn Write + Send>>>);

impl Reply {
    fn new(w: Box<dyn Write + Send>) -> Reply {
        Reply(Arc::new(Mutex::new(w)))
    }

    fn send(&self, j: &Json) {
        let mut g = self.0.lock().unwrap();
        // A torn-down client is not a daemon error; drop the response.
        let _ = writeln!(g, "{}", j.compact());
        let _ = g.flush();
    }
}

/// An admitted data-plane request.
struct Job {
    req: Request,
    reply: Reply,
    enqueued: Instant,
}

/// The bounded admission queue. `push` never blocks: a full queue is an
/// immediate, typed rejection — that is the whole point.
struct Queue {
    depth: usize,
    inner: Mutex<(VecDeque<Box<Job>>, bool)>,
    cv: Condvar,
}

impl Queue {
    fn new(depth: usize) -> Queue {
        Queue {
            depth,
            inner: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Admits a job, or hands it back when the queue is full or closed.
    fn push(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        let mut g = self.inner.lock().unwrap();
        if g.1 || g.0.len() >= self.depth {
            return Err(job);
        }
        g.0.push_back(job);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once closed *and* drained, which
    /// is the workers' exit signal.
    fn pop(&self) -> Option<Box<Job>> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(j) = g.0.pop_front() {
                return Some(j);
            }
            if g.1 {
                return None;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().1 = true;
        self.cv.notify_all();
    }

    fn len(&self) -> usize {
        self.inner.lock().unwrap().0.len()
    }
}

/// Who asked for shutdown (the final stats response goes to them; `None`
/// reply means stdin EOF initiated it).
struct ShutdownReq {
    id: Option<Json>,
    reply: Option<Reply>,
}

struct Shared {
    params: PlasticineParams,
    opts: ServeOptions,
    cache: CompileCache,
    metrics: Metrics,
    fabric: FabricScheduler,
    queue: Queue,
    shutting_down: AtomicBool,
    stop_accept: AtomicBool,
    signal: Mutex<Option<ShutdownReq>>,
    signal_cv: Condvar,
}

impl Shared {
    /// Begins the drain. `is_request` distinguishes a real `shutdown`
    /// request (a duplicate gets a typed `shutting_down` rejection) from
    /// stdin EOF (not a request; a redundant EOF is silent).
    fn initiate_shutdown(&self, id: Option<Json>, reply: Option<Reply>, is_request: bool) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut g = self.signal.lock().unwrap();
        if g.is_none() {
            *g = Some(ShutdownReq { id, reply });
            self.signal_cv.notify_all();
        } else if is_request {
            if let Some(r) = reply {
                // Second shutdown while the first drains: typed rejection.
                r.send(&shutting_down_response(&id, "shutdown"));
            }
        }
    }

    fn wait_shutdown(&self) -> ShutdownReq {
        let mut g = self.signal.lock().unwrap();
        loop {
            if let Some(req) = g.take() {
                return req;
            }
            g = self.signal_cv.wait(g).unwrap();
        }
    }

    fn stats_snapshot(&self) -> Json {
        self.metrics
            .snapshot(self.queue.len(), self.cache.hits(), self.cache.misses())
    }
}

/// A failed request, carrying the exit-status class its `status`/`code`
/// fields mirror.
struct Failure {
    status: ExitStatus,
    message: String,
}

impl Failure {
    fn new(status: ExitStatus, message: impl Into<String>) -> Failure {
        Failure {
            status,
            message: message.into(),
        }
    }

    fn from_sim(e: SimError) -> Failure {
        Failure {
            status: ExitStatus::from(&e),
            message: e.to_string(),
        }
    }
}

/// Runs the daemon until a `shutdown` request (or stdin EOF with no
/// socket configured) completes its drain. Returns the final stats
/// payload.
///
/// # Errors
///
/// Returns `Err` only for startup failures (unusable socket path); once
/// serving, request failures become typed responses, never daemon exits.
pub fn serve(params: &PlasticineParams, opts: ServeOptions) -> Result<Json, String> {
    let socket_path = opts.socket.clone();
    let listener = match &socket_path {
        Some(p) => Some(bind_socket(p)?),
        None => None,
    };
    let worker_count = opts.workers;
    let shared = Arc::new(Shared {
        params: params.clone(),
        queue: Queue::new(opts.queue_depth),
        opts,
        cache: CompileCache::new(),
        metrics: Metrics::new(),
        fabric: FabricScheduler::new(params),
        shutting_down: AtomicBool::new(false),
        stop_accept: AtomicBool::new(false),
        signal: Mutex::new(None),
        signal_cv: Condvar::new(),
    });
    let workers: Vec<_> = (0..worker_count)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let fabric_handle = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            fabric::scheduler_loop(
                &shared.fabric,
                &shared.params,
                &shared.cache,
                &shared.metrics,
            )
        })
    };
    let accept_handle = listener.map(|l| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, l))
    });
    {
        let shared = Arc::clone(&shared);
        // Detached: blocked in `read_line` until EOF or process exit.
        std::thread::spawn(move || stdin_loop(&shared));
    }
    eprintln!(
        "serve: ready ({} workers, queue depth {}, deadline {}ms{})",
        worker_count,
        shared.opts.queue_depth,
        shared.opts.deadline.as_millis(),
        match &socket_path {
            Some(p) => format!(", socket {}", p.display()),
            None => String::new(),
        }
    );
    let sig = shared.wait_shutdown();
    // Drain: admission already rejects (shutting_down is set); close the
    // queue so workers exit once the backlog — each request bounded by
    // its deadline — is gone.
    shared.stop_accept.store(true, Ordering::SeqCst);
    shared.queue.close();
    shared.fabric.stop();
    let mut joined = 0usize;
    for h in workers {
        if h.join().is_ok() {
            joined += 1;
        }
    }
    let _ = fabric_handle.join();
    if let Some(h) = accept_handle {
        let _ = h.join();
    }
    if let Some(p) = &socket_path {
        let _ = std::fs::remove_file(p);
    }
    let final_stats = shared.stats_snapshot();
    if let Some(reply) = &sig.reply {
        let mut pairs = response_head(&sig.id, "shutdown", "ok", 0);
        pairs.push(("stats".to_string(), final_stats.clone()));
        pairs.push(("workers_joined".to_string(), Json::from(joined)));
        pairs.push(("workers_total".to_string(), Json::from(worker_count)));
        reply.send(&Json::Obj(pairs));
    }
    eprintln!(
        "serve: drained; {joined}/{worker_count} workers joined; final stats: {}",
        final_stats.compact()
    );
    Ok(final_stats)
}

#[cfg(unix)]
fn bind_socket(path: &std::path::Path) -> Result<std::os::unix::net::UnixListener, String> {
    use std::os::unix::net::{UnixListener, UnixStream};
    if path.exists() {
        // A live daemon answers a connect; a stale socket file (crashed
        // daemon) refuses it and is safe to reclaim.
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(format!(
                    "--socket {}: another daemon is already listening",
                    path.display()
                ))
            }
            Err(_) => {
                std::fs::remove_file(path).map_err(|e| {
                    format!("--socket {}: removing stale socket: {e}", path.display())
                })?;
            }
        }
    }
    UnixListener::bind(path).map_err(|e| format!("--socket {}: {e}", path.display()))
}

#[cfg(not(unix))]
fn bind_socket(path: &std::path::Path) -> Result<std::convert::Infallible, String> {
    Err(format!(
        "--socket {}: unix sockets are not supported on this platform",
        path.display()
    ))
}

#[cfg(unix)]
fn accept_loop(shared: &Arc<Shared>, listener: std::os::unix::net::UnixListener) {
    // Nonblocking + poll so the loop can observe `stop_accept` without a
    // self-connect dance.
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.stop_accept.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    let _ = stream.set_nonblocking(false);
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    let reply = Reply::new(Box::new(stream));
                    let reader = std::io::BufReader::new(read_half);
                    for line in reader.lines() {
                        let Ok(line) = line else { break };
                        handle_line(&shared, &line, &reply);
                    }
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

#[cfg(not(unix))]
fn accept_loop(_shared: &Arc<Shared>, _listener: std::convert::Infallible) {}

fn stdin_loop(shared: &Arc<Shared>) {
    let stdin = std::io::stdin();
    let reply = Reply::new(Box::new(std::io::stdout()));
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        handle_line(shared, &line, &reply);
    }
    // EOF. When stdio is the only transport the client is gone and the
    // daemon would serve nobody: drain and exit. With a socket configured
    // (daemonized start, stdin < /dev/null), keep serving.
    if shared.opts.socket.is_none() {
        shared.initiate_shutdown(None, Some(reply), false);
    }
}

/// One request line: parse, dispatch control-plane ops inline, admit
/// data-plane ops to the bounded queue (or shed).
fn handle_line(shared: &Arc<Shared>, line: &str, reply: &Reply) {
    if line.trim().is_empty() {
        return;
    }
    let req = match parse_request(line) {
        Ok(r) => r,
        Err((id, msg)) => {
            shared.metrics.record_inline("usage");
            reply.send(&error_response(&id, "?", ExitStatus::Usage, &msg));
            return;
        }
    };
    match req.op {
        Op::Stats => {
            let mut pairs = response_head(&req.id, "stats", "ok", 0);
            pairs.push(("stats".to_string(), shared.stats_snapshot()));
            pairs.push(("fabric_health".to_string(), shared.fabric.health_json()));
            reply.send(&Json::Obj(pairs));
        }
        Op::Shutdown => shared.initiate_shutdown(req.id.clone(), Some(reply.clone()), true),
        Op::Submit => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                shared.metrics.record_shed("shutting_down");
                reply.send(&shutting_down_response(&req.id, "submit"));
                return;
            }
            match submit_tenant(shared, &req) {
                Ok(pairs) => {
                    shared.metrics.record_inline("ok");
                    let mut head = response_head(&req.id, "submit", "ok", 0);
                    head.extend(pairs);
                    reply.send(&Json::Obj(head));
                }
                Err(f) => {
                    shared.metrics.record_inline(f.status.name());
                    reply.send(&error_response(&req.id, "submit", f.status, &f.message));
                }
            }
        }
        Op::Tenants => {
            let mut pairs = response_head(&req.id, "tenants", "ok", 0);
            pairs.push(("tenants".to_string(), shared.fabric.tenants_json()));
            reply.send(&Json::Obj(pairs));
        }
        Op::Evict => {
            let resp = match req.tenant {
                None => error_response(
                    &req.id,
                    "evict",
                    ExitStatus::Usage,
                    "`evict` requires a `tenant` field",
                ),
                Some(id) => {
                    // Bounded wait on the connection thread: the eviction
                    // lands at the tenant's next quantum boundary.
                    let wait = shared.opts.deadline.min(Duration::from_secs(30));
                    match shared.fabric.request_evict(id as usize, wait) {
                        Ok(pairs) => {
                            let mut head = response_head(&req.id, "evict", "ok", 0);
                            head.extend(pairs);
                            Json::Obj(head)
                        }
                        Err(msg) => error_response(&req.id, "evict", ExitStatus::Runtime, &msg),
                    }
                }
            };
            reply.send(&resp);
        }
        Op::Compile | Op::Run | Op::Batch => {
            let op = req.op.as_str();
            if shared.shutting_down.load(Ordering::SeqCst) {
                shared.metrics.record_shed("shutting_down");
                reply.send(&shutting_down_response(&req.id, op));
                return;
            }
            let job = Box::new(Job {
                req,
                reply: reply.clone(),
                enqueued: Instant::now(),
            });
            if let Err(job) = shared.queue.push(job) {
                shared.metrics.record_shed("overloaded");
                job.reply
                    .send(&overloaded_response(&job.req.id, op, shared.queue.depth));
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.begin();
        let enqueued = job.enqueued;
        let resp = execute_job(shared, job.req);
        let status = resp
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("runtime")
            .to_string();
        // Account the request as finished *before* replying: a client
        // that sees its response and immediately polls `stats` must not
        // find its own request still in flight.
        shared.metrics.finish(&status, enqueued.elapsed());
        job.reply.send(&resp);
    }
}

/// Effective options of one run/compile, request fields over server
/// defaults.
struct Eff {
    bench: Bench,
    faults: FaultMap,
    seed: u64,
    step: StepMode,
    threads: usize,
    max_cycles: Option<u64>,
}

/// Validates a `submit` request and queues the tenant with the fabric
/// scheduler. Answered inline — the heavy work (compile, simulate) runs
/// on the scheduler thread.
fn submit_tenant(shared: &Shared, req: &Request) -> Result<Vec<(String, Json)>, Failure> {
    let name = req
        .bench
        .as_deref()
        .ok_or_else(|| Failure::new(ExitStatus::Usage, "`submit` requires a `bench` field"))?;
    let rows = req
        .rows
        .ok_or_else(|| Failure::new(ExitStatus::Usage, "`submit` requires a `rows` field"))?;
    let d = &shared.opts.defaults;
    let scale = req.scale.unwrap_or(d.scale);
    // Resolve to the canonical name now so a typo fails the submission,
    // not the scheduler thread later.
    let bench = all(Scale(scale))
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            Failure::new(
                ExitStatus::Runtime,
                format!("unknown benchmark `{name}` (try `plasticine-run list`)"),
            )
        })?;
    let channels = req.channels.unwrap_or(1);
    // Sample the tenant's fault-arrival schedule now so a malformed spec
    // fails the submission, not the scheduler thread later. Channel
    // failures are sampled against the tenant's private share.
    let timeline = match &req.timeline {
        Some(s) => {
            let tspec: FaultTimelineSpec = s
                .parse()
                .map_err(|e| Failure::new(ExitStatus::Usage, format!("timeline: {e}")))?;
            let topo = Topology::new(&shared.params);
            FaultTimeline::sample(&topo, &tspec, channels)
        }
        None => FaultTimeline::default(),
    };
    let spec = SubmitSpec {
        bench: bench.name.clone(),
        scale,
        rows,
        channels,
        step: req.step.unwrap_or(d.step),
        threads: req.threads.unwrap_or(d.threads),
        max_cycles: req.max_cycles.or(d.max_cycles),
        timeline,
    };
    let bench_name = spec.bench.clone();
    let (rows, channels) = (spec.rows, spec.channels);
    let id = shared
        .fabric
        .submit(spec)
        .map_err(|m| Failure::new(ExitStatus::Usage, m))?;
    shared
        .metrics
        .record_tenant(&bench_name, TenantEvent::Submitted);
    Ok(vec![
        ("tenant".to_string(), Json::from(id)),
        ("bench".to_string(), Json::from(bench_name)),
        ("rows".to_string(), Json::from(rows)),
        ("channels".to_string(), Json::from(channels)),
        ("state".to_string(), Json::from("queued")),
    ])
}

fn resolve_faults(shared: &Shared, req: &Request) -> Result<(FaultMap, u64), Failure> {
    let spec = match &req.faults {
        Some(s) => Some(
            s.parse::<FaultSpec>()
                .map_err(|e| Failure::new(ExitStatus::Usage, format!("faults: {e}")))?,
        ),
        None => shared.opts.defaults.faults.clone(),
    };
    Ok(match spec {
        Some(spec) => {
            let topo = Topology::new(&shared.params);
            let channels = plasticine_dram::DramConfig::default().channels;
            let seed = spec.seed;
            (FaultMap::sample(&topo, &spec, channels), seed)
        }
        None => (FaultMap::default(), 0),
    })
}

fn resolve_bench(shared: &Shared, req: &Request, name: &str) -> Result<Eff, Failure> {
    let d = &shared.opts.defaults;
    let scale = req.scale.unwrap_or(d.scale);
    let bench = all(Scale(scale))
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            // Mirrors the one-shot CLI, where an unknown benchmark is
            // exit 1, not a usage error.
            Failure::new(
                ExitStatus::Runtime,
                format!("unknown benchmark `{name}` (try `plasticine-run list`)"),
            )
        })?;
    let (faults, seed) = resolve_faults(shared, req)?;
    Ok(Eff {
        bench,
        faults,
        seed,
        step: req.step.unwrap_or(d.step),
        threads: req.threads.unwrap_or(d.threads),
        max_cycles: req.max_cycles.or(d.max_cycles),
    })
}

/// Executes one queued job, producing the full response object. Never
/// panics out: everything heavy runs contained.
fn execute_job(shared: &Arc<Shared>, req: Request) -> Json {
    let op = req.op.as_str();
    let id = req.id.clone();
    let result = match req.op {
        Op::Run => execute_run(shared, &req),
        Op::Compile => execute_compile(shared, &req),
        Op::Batch => execute_batch(shared, &req),
        // Control-plane ops are answered in `handle_line`, never queued.
        Op::Stats | Op::Shutdown | Op::Submit | Op::Tenants | Op::Evict => {
            return error_response(&id, op, ExitStatus::Usage, "control-plane op was queued")
        }
    };
    match result {
        Ok(payload) => {
            let mut pairs = response_head(&id, op, "ok", 0);
            pairs.extend(payload);
            Json::Obj(pairs)
        }
        Err(f) => error_response(&id, op, f.status, &f.message),
    }
}

/// Runs `f` on its own thread under `catch_unwind`, bounded by what is
/// left of the request's deadline. On timeout the attempt thread is
/// abandoned (it holds nothing the daemon needs) and the request reports
/// a typed runtime failure — the batch supervisor's containment, per
/// request.
fn contained<T: Send + 'static>(
    deadline: Duration,
    enqueued: Instant,
    f: impl FnOnce() -> Result<T, Failure> + Send + 'static,
) -> Result<T, Failure> {
    let Some(remaining) = deadline.checked_sub(enqueued.elapsed()) else {
        return Err(Failure::new(
            ExitStatus::Runtime,
            format!(
                "deadline exceeded after {}ms before execution began (queued too long)",
                deadline.as_millis()
            ),
        ));
    };
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let res = catch_unwind(AssertUnwindSafe(f));
        let _ = tx.send(res);
    });
    match rx.recv_timeout(remaining) {
        Ok(res) => {
            let _ = handle.join();
            res.unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Err(Failure::new(
                    ExitStatus::Runtime,
                    format!("worker panicked: {msg}"),
                ))
            })
        }
        Err(_) => Err(Failure::new(
            ExitStatus::Runtime,
            format!(
                "deadline exceeded after {}ms (request abandoned)",
                deadline.as_millis()
            ),
        )),
    }
}

/// What one successful simulation reports back.
struct RunOutcome {
    result: SimResult,
    compile_degraded: Vec<String>,
    resumed_from: Option<u64>,
    retries: u32,
    recovery: Option<String>,
    recovery_notes: Vec<String>,
}

/// One compile+simulate+verify attempt, through the shared cache.
/// `prog_override` carries a parallelization-reduced program on the
/// degradation path.
fn run_once(
    shared: &Shared,
    eff: &Eff,
    prog_override: Option<&Program>,
) -> Result<RunOutcome, Failure> {
    let program = prog_override.unwrap_or(&eff.bench.program);
    let copts = CompileOptions {
        faults: eff.faults.clone(),
        ..CompileOptions::new()
    };
    let cached = shared
        .cache
        .compile_degraded(program, &shared.params, &copts)
        .map_err(|e| Failure::new(ExitStatus::Compile, e.to_string()))?;
    let (out, prog, degraded) = &*cached;
    let mut m = Machine::new(prog);
    eff.bench.load(&mut m);
    let mut opts = SimOptions {
        faults: eff.faults.clone(),
        step: eff.step,
        threads: eff.threads,
        ..SimOptions::default()
    };
    if let Some(n) = eff.max_cycles {
        opts.max_cycles = n;
    }
    let d = &shared.opts.defaults;
    let checkpointing = d.checkpoint_every.is_some() || d.checkpoint_dir.is_some();
    let mut resumed_from = None;
    let r = if checkpointing {
        let dir = d.checkpoint_dir.as_deref().unwrap_or(".");
        let ckpt_path = checkpoint_path(dir, &eff.bench.name);
        // A checkpoint left by an interrupted earlier request (or a
        // previous daemon incarnation) resumes when it matches this exact
        // job; a stale or foreign snapshot is ignored.
        let resume = match Checkpoint::load(&ckpt_path) {
            Ok(c) if c.matches(prog, &out.config, &opts).is_ok() => {
                resumed_from = Some(c.cycle);
                Some(c)
            }
            _ => None,
        };
        let policy = CheckpointPolicy {
            every: d.checkpoint_every,
            on_error: true,
        };
        let r = simulate_checkpointed(
            prog,
            out,
            &mut m,
            &opts,
            policy,
            resume.as_ref(),
            &mut |c| {
                if let Err(e) = super::emit_checkpoint(dir, &eff.bench.name, d.checkpoint_keep, c) {
                    eprintln!("serve: {}: checkpoint write failed: {e}", eff.bench.name);
                }
            },
        )
        .map_err(Failure::from_sim)?;
        let _ = std::fs::remove_file(&ckpt_path);
        r
    } else {
        simulate(prog, out, &mut m, &opts).map_err(Failure::from_sim)?
    };
    eff.bench
        .verify(&m)
        .map_err(|e| Failure::new(ExitStatus::Runtime, e))?;
    Ok(RunOutcome {
        result: r,
        compile_degraded: degraded.clone(),
        resumed_from,
        retries: 0,
        recovery: None,
        recovery_notes: Vec::new(),
    })
}

/// The full run pipeline: attempt, bounded jittered retry on fault
/// exhaustion, then reduced-parallelization degradation.
fn run_pipeline(shared: &Shared, eff: &Eff) -> Result<RunOutcome, Failure> {
    // The CI/test fault hooks the batch supervisor uses, honored here so
    // panic and hang containment can be driven deterministically.
    if env_lists_bench("PLASTICINE_TEST_PANIC", &eff.bench.name) {
        panic!(
            "injected panic in `{}` (PLASTICINE_TEST_PANIC)",
            eff.bench.name
        );
    }
    if env_lists_bench("PLASTICINE_TEST_HANG", &eff.bench.name) {
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let mut attempt = 0u32;
    let mut result = run_once(shared, eff, None);
    loop {
        match &result {
            Err(f) if f.status == ExitStatus::FaultExhaustion && attempt < shared.opts.retries => {
                attempt += 1;
                let ms = jittered_backoff_ms(eff.seed, &eff.bench.name, attempt);
                std::thread::sleep(Duration::from_millis(ms));
                result = run_once(shared, eff, None);
            }
            _ => break,
        }
    }
    if let Ok(out) = &mut result {
        out.retries = attempt;
        return result;
    }
    let Err(f) = &result else { unreachable!() };
    if f.status != ExitStatus::FaultExhaustion {
        return result;
    }
    // Graceful degradation: halve the largest parallelization factor and
    // re-run, repeating until the run survives or no parallelism is left.
    // Fewer in-flight requests per cycle means fewer chances for the
    // injected drop stream to exhaust a retry budget.
    let mut prog = eff.bench.program.clone();
    let mut notes = Vec::new();
    while let Some((reduced, note)) = prog.with_reduced_par() {
        prog = reduced;
        notes.push(note);
        match run_once(shared, eff, Some(&prog)) {
            Ok(mut out) => {
                out.retries = attempt;
                out.recovery = Some("compile_degraded".to_string());
                out.recovery_notes = notes;
                return Ok(out);
            }
            Err(f2) if f2.status == ExitStatus::FaultExhaustion => continue,
            Err(f2) => return Err(f2),
        }
    }
    result
}

fn outcome_payload(bench: &Bench, out: &RunOutcome) -> Vec<(String, Json)> {
    let mut pairs = vec![
        ("bench".to_string(), Json::from(bench.name.clone())),
        ("cycles".to_string(), Json::from(out.result.cycles)),
        ("verified".to_string(), Json::from(true)),
    ];
    if !out.compile_degraded.is_empty() {
        pairs.push((
            "degraded".to_string(),
            Json::Arr(
                out.compile_degraded
                    .iter()
                    .map(|n| Json::from(n.as_str()))
                    .collect(),
            ),
        ));
    }
    if let Some(c) = out.resumed_from {
        pairs.push(("resumed_from".to_string(), Json::from(c)));
    }
    if out.retries > 0 {
        pairs.push(("retries".to_string(), Json::from(out.retries)));
    }
    if let Some(r) = &out.recovery {
        pairs.push(("recovery".to_string(), Json::from(r.as_str())));
        pairs.push((
            "recovery_notes".to_string(),
            Json::Arr(
                out.recovery_notes
                    .iter()
                    .map(|n| Json::from(n.as_str()))
                    .collect(),
            ),
        ));
    }
    pairs
}

fn execute_run(shared: &Arc<Shared>, req: &Request) -> Result<Vec<(String, Json)>, Failure> {
    let name = req
        .bench
        .as_deref()
        .ok_or_else(|| Failure::new(ExitStatus::Usage, "`run` requires a `bench` field"))?;
    let eff = resolve_bench(shared, req, name)?;
    let enqueued = Instant::now();
    let deadline = shared.opts.deadline;
    let shared2 = Arc::clone(shared);
    let out = contained(deadline, enqueued, move || {
        let eff = eff;
        run_pipeline(&shared2, &eff).map(|o| (eff, o))
    })?;
    let (eff, out) = out;
    let mut pairs = outcome_payload(&eff.bench, &out);
    // The exact object the one-shot CLI writes with `--stats-json`:
    // byte-identical by construction (same compile, same options, same
    // deterministic kernel).
    pairs.push((
        "stats".to_string(),
        stats_with_bench(&eff.bench, &out.result),
    ));
    Ok(pairs)
}

fn execute_compile(shared: &Arc<Shared>, req: &Request) -> Result<Vec<(String, Json)>, Failure> {
    let name = req
        .bench
        .as_deref()
        .ok_or_else(|| Failure::new(ExitStatus::Usage, "`compile` requires a `bench` field"))?;
    let eff = resolve_bench(shared, req, name)?;
    let out_path = req.out.clone();
    let deadline = shared.opts.deadline;
    let shared2 = Arc::clone(shared);
    contained(deadline, Instant::now(), move || {
        if env_lists_bench("PLASTICINE_TEST_PANIC", &eff.bench.name) {
            panic!(
                "injected panic in `{}` (PLASTICINE_TEST_PANIC)",
                eff.bench.name
            );
        }
        let copts = CompileOptions {
            faults: eff.faults.clone(),
            ..CompileOptions::new()
        };
        let cached = shared2
            .cache
            .compile_degraded(&eff.bench.program, &shared2.params, &copts)
            .map_err(|e| Failure::new(ExitStatus::Compile, e.to_string()))?;
        let (out, _, degraded) = &*cached;
        let artifact = Bitstream::new(&eff.bench.program, out.clone(), degraded.clone());
        let (pcu, pmu, ag) = out.config.utilization();
        let mut pairs = vec![
            ("bench".to_string(), Json::from(eff.bench.name.clone())),
            ("pcus".to_string(), Json::from(out.config.usage.pcus)),
            ("pmus".to_string(), Json::from(out.config.usage.pmus)),
            ("ags".to_string(), Json::from(out.config.usage.ags)),
            ("links".to_string(), Json::from(out.config.links.len())),
            ("util_pcu".to_string(), Json::from(pcu)),
            ("util_pmu".to_string(), Json::from(pmu)),
            ("util_ag".to_string(), Json::from(ag)),
            ("content_hash".to_string(), Json::hex(artifact.content_hash)),
        ];
        if !degraded.is_empty() {
            pairs.push((
                "degraded".to_string(),
                Json::Arr(degraded.iter().map(|n| Json::from(n.as_str())).collect()),
            ));
        }
        if let Some(path) = &out_path {
            artifact.save(std::path::Path::new(path)).map_err(|e| {
                Failure::new(ExitStatus::Runtime, format!("saving artifact {path}: {e}"))
            })?;
            pairs.push(("out".to_string(), Json::from(path.as_str())));
        }
        Ok(pairs)
    })
}

fn execute_batch(shared: &Arc<Shared>, req: &Request) -> Result<Vec<(String, Json)>, Failure> {
    if req.benches.is_empty() {
        return Err(Failure::new(
            ExitStatus::Usage,
            "`batch` requires a `benches` list (names or \"all\")",
        ));
    }
    // Resolve every name up front so typos fail fast, before any work.
    let mut effs: Vec<Eff> = Vec::new();
    for name in &req.benches {
        if name == "all" {
            let scale = req.scale.unwrap_or(shared.opts.defaults.scale);
            for b in all(Scale(scale)) {
                let name = b.name.clone();
                effs.push(resolve_bench(shared, req, &name)?);
            }
        } else {
            effs.push(resolve_bench(shared, req, name)?);
        }
    }
    let deadline = shared.opts.deadline;
    let shared2 = Arc::clone(shared);
    contained(deadline, Instant::now(), move || {
        let mut results = Vec::new();
        let (mut ok, mut failed) = (0u64, 0u64);
        let mut first_failure: Option<ExitStatus> = None;
        for eff in &effs {
            // Contain each benchmark separately so one panicking job
            // yields a typed per-bench failure instead of sinking the
            // whole batch response.
            let res = catch_unwind(AssertUnwindSafe(|| run_pipeline(&shared2, eff)))
                .unwrap_or_else(|panic| {
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(Failure::new(
                        ExitStatus::Runtime,
                        format!("worker panicked: {msg}"),
                    ))
                });
            match res {
                Ok(out) => {
                    ok += 1;
                    let mut pairs = vec![
                        ("bench".to_string(), Json::from(eff.bench.name.clone())),
                        ("status".to_string(), Json::from("ok")),
                        ("code".to_string(), Json::from(0u64)),
                        ("cycles".to_string(), Json::from(out.result.cycles)),
                    ];
                    if let Some(r) = &out.recovery {
                        pairs.push(("recovery".to_string(), Json::from(r.as_str())));
                    }
                    results.push(Json::Obj(pairs));
                }
                Err(f) => {
                    failed += 1;
                    first_failure.get_or_insert(f.status);
                    results.push(Json::obj([
                        ("bench", Json::from(eff.bench.name.clone())),
                        ("status", Json::from(f.status.name())),
                        ("code", Json::from(i64::from(f.status.code()))),
                        ("error", Json::from(f.message)),
                    ]));
                }
            }
        }
        if let Some(status) = first_failure {
            return Err(Failure::new(
                status,
                format!(
                    "{failed} of {} jobs failed; see `results`: {}",
                    results.len(),
                    Json::Arr(results).compact()
                ),
            ));
        }
        Ok(vec![
            ("ok".to_string(), Json::from(ok)),
            ("failed".to_string(), Json::from(failed)),
            ("results".to_string(), Json::Arr(results)),
        ])
    })
}
