//! The multi-tenant fabric scheduler behind the `submit`/`tenants`/
//! `evict` serve ops.
//!
//! Tenants are programs compiled into disjoint fabric bands
//! ([`Partition`]) and admitted from a FIFO queue by best-fit against the
//! chip-level [`PartitionTable`]. One dedicated scheduler thread owns
//! every resident tenant's [`SimKernel`] and advances them in
//! deterministic weighted round-robin quanta — a tenant with a
//! `c`-channel share advances `c × QUANTUM` cycles per round, mirroring
//! the per-tenant DRAM-channel credit weights. Because co-resident bands
//! share no simulated resource, each tenant's final stats are
//! byte-identical to a solo run on a dedicated fabric of its partition's
//! geometry (the isolation invariant; see DESIGN.md §15).
//!
//! Preemption: when the tenant at the head of the queue cannot be placed
//! and strictly smaller tenants are resident, the smaller residents are
//! checkpointed off the fabric and requeued; checkpoint config hashes are
//! partition-offset-normalized, so a preempted tenant later resumes on
//! any free [pattern-equivalent](Partition::pattern_equivalent) band —
//! same height, offset congruent modulo the grid mix's vertical period
//! (same parity on the checkerboard) — and still finishes with
//! byte-identical stats. Admission planning enforces the equivalence
//! when it places a checkpointed tenant. The `evict` op drives the same
//! path on demand.
//!
//! Control-plane calls ([`FabricScheduler::submit`],
//! [`FabricScheduler::tenants_json`], [`FabricScheduler::request_evict`])
//! touch only the metadata table under a mutex; the kernels themselves
//! live on the scheduler thread, so a long-running quantum never blocks
//! observability.

use super::metrics::{Metrics, TenantEvent};
use super::stats_with_bench;
use plasticine_arch::{
    FaultMap, FaultTimeline, GridMix, HealthMap, Partition, PartitionTable, PlasticineParams,
    Topology,
};
use plasticine_compiler::{CompileCache, CompileOptions};
use plasticine_json::Json;
use plasticine_ppir::Machine;
use plasticine_sim::{
    Advance, Checkpoint, DegradedReport, SimError, SimKernel, SimOptions, StepMode,
};
use plasticine_workloads::{all, Bench, Scale};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cycles a weight-1 tenant advances per scheduler round. Small enough
/// that evictions land promptly, large enough that the round-robin
/// overhead (a map walk) is negligible against simulated work.
pub const QUANTUM: u64 = 2048;

/// What a `submit` request asks for.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Canonical benchmark name (already resolved by the server).
    pub bench: String,
    /// Problem-size multiplier.
    pub scale: usize,
    /// Fabric rows requested.
    pub rows: usize,
    /// DRAM-channel share requested (also the round-robin credit weight).
    pub channels: usize,
    /// Step mode for the tenant's simulation.
    pub step: StepMode,
    /// Simulator threads for the tenant's simulation.
    pub threads: usize,
    /// Cycle budget (`None` = simulator default).
    pub max_cycles: Option<u64>,
    /// Scheduled online fault arrivals for the tenant's run (sampled by
    /// the server from the request's `timeline` spec; inert by default).
    pub timeline: FaultTimeline,
}

/// Lifecycle of a tenant. `Queued` covers both a fresh submission and a
/// preempted/evicted tenant waiting to resume (the latter carries a
/// checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

struct TenantEntry {
    spec: SubmitSpec,
    phase: Phase,
    partition: Option<Partition>,
    /// The band the live checkpoint was taken on. A resumed tenant may
    /// only be placed on a [pattern-equivalent](Partition::pattern_equivalent)
    /// band — same height, offset congruent modulo the grid mix's
    /// vertical period — or the checkpoint guard will (rightly) refuse
    /// the relocated bitstream.
    anchor: Option<Partition>,
    checkpoint: Option<Checkpoint>,
    cycles: u64,
    preemptions: u64,
    /// This waiting tenant already triggered one preemption sweep;
    /// never fire a second for it (livelock guard).
    preempt_fired: bool,
    /// Eviction requested (by the `evict` op or the preemption planner);
    /// honored by the scheduler thread at the next quantum boundary.
    evict_requested: bool,
    /// The pending eviction is a scheduler preemption, not an operator
    /// request (metrics attribution).
    preempted: bool,
    /// The tenant is queued because a fault arrival degraded its band
    /// (the next successful admission is a heal, not a plain resume).
    healing: bool,
    /// Successful heals: degraded exits followed by a resumed admission.
    healed: u64,
    /// Heals that landed on a band other than the one the tenant
    /// degraded on.
    migrations: u64,
    /// Simulated cycles of progress lost to healing (zero while every
    /// heal resumes the degraded exit's own checkpoint; a forced restart
    /// forfeits the checkpointed progress).
    downtime_cycles: u64,
    /// Latest arrival cycle already absorbed into the chip [`HealthMap`]
    /// from this tenant's degradation reports. A re-degraded tenant
    /// replays the fired prefix of its timeline, so its next report
    /// lists old arrivals again; the watermark keeps bank-failure
    /// counters from double-absorbing them.
    absorbed_through: u64,
    error: Option<String>,
    stats: Option<Json>,
}

struct FabricState {
    table: PartitionTable,
    topo: Topology,
    mix: GridMix,
    rows_total: usize,
    channels_total: usize,
    /// Hard faults the chip has accumulated from degraded tenants.
    /// Admission steers placements onto healthy bands while any exist;
    /// when no healthy band fits, the compile goes through the degraded
    /// path against the merged map.
    health: HealthMap,
    tenants: Vec<TenantEntry>,
    pending: VecDeque<usize>,
    stop: bool,
}

/// Shared scheduler state: the metadata table every transport thread may
/// read, and the command flags the scheduler thread consumes.
pub struct FabricScheduler {
    state: Mutex<FabricState>,
    cv: Condvar,
}

impl FabricScheduler {
    /// An empty scheduler over a chip's fabric rows and DRAM channels.
    pub fn new(params: &PlasticineParams) -> FabricScheduler {
        FabricScheduler {
            state: Mutex::new(FabricState {
                table: PartitionTable::new(params),
                topo: Topology::new(params),
                mix: params.mix,
                rows_total: params.rows,
                channels_total: params.coalescing_units,
                health: HealthMap::new(),
                tenants: Vec::new(),
                pending: VecDeque::new(),
                stop: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queues a tenant for admission. Returns its id.
    ///
    /// # Errors
    ///
    /// A usage-class message when the requested geometry cannot ever fit
    /// the chip (zero or over-size rows/channels).
    pub fn submit(&self, spec: SubmitSpec) -> Result<usize, String> {
        let mut g = self.state.lock().unwrap();
        if spec.rows == 0 || spec.rows > g.rows_total {
            return Err(format!(
                "`rows` must be in 1..={} (got {})",
                g.rows_total, spec.rows
            ));
        }
        if spec.channels == 0 || spec.channels > g.channels_total {
            return Err(format!(
                "`channels` must be in 1..={} (got {})",
                g.channels_total, spec.channels
            ));
        }
        if g.stop {
            return Err("scheduler is shut down".to_string());
        }
        let id = g.tenants.len();
        g.tenants.push(TenantEntry {
            spec,
            phase: Phase::Queued,
            partition: None,
            anchor: None,
            checkpoint: None,
            cycles: 0,
            preemptions: 0,
            preempt_fired: false,
            evict_requested: false,
            preempted: false,
            healing: false,
            healed: 0,
            migrations: 0,
            downtime_cycles: 0,
            absorbed_through: 0,
            error: None,
            stats: None,
        });
        g.pending.push_back(id);
        self.cv.notify_all();
        Ok(id)
    }

    /// The `tenants` op payload: every tenant ever submitted, in id
    /// order, with its current phase, band, progress, and (once done) the
    /// same stats object a solo run reports.
    pub fn tenants_json(&self) -> Json {
        let g = self.state.lock().unwrap();
        Json::Arr(
            g.tenants
                .iter()
                .enumerate()
                .map(|(id, t)| {
                    let mut pairs = vec![
                        ("tenant".to_string(), Json::from(id)),
                        ("bench".to_string(), Json::from(t.spec.bench.clone())),
                        ("state".to_string(), Json::from(t.phase.name())),
                        ("rows".to_string(), Json::from(t.spec.rows)),
                        ("channels".to_string(), Json::from(t.spec.channels)),
                        ("cycles".to_string(), Json::from(t.cycles)),
                    ];
                    if let Some(p) = &t.partition {
                        pairs.push(("partition".to_string(), Json::from(p.to_string())));
                    }
                    if t.preemptions > 0 {
                        pairs.push(("preemptions".to_string(), Json::from(t.preemptions)));
                    }
                    if t.healed > 0 {
                        pairs.push(("healed".to_string(), Json::from(t.healed)));
                    }
                    if t.migrations > 0 {
                        pairs.push(("migrations".to_string(), Json::from(t.migrations)));
                    }
                    if t.downtime_cycles > 0 {
                        pairs.push(("downtime_cycles".to_string(), Json::from(t.downtime_cycles)));
                    }
                    if t.checkpoint.is_some() {
                        pairs.push(("resumable".to_string(), Json::from(true)));
                    }
                    if let Some(e) = &t.error {
                        pairs.push(("error".to_string(), Json::from(e.clone())));
                    }
                    if let Some(s) = &t.stats {
                        pairs.push(("stats".to_string(), s.clone()));
                    }
                    Json::Obj(pairs)
                })
                .collect(),
        )
    }

    /// The `evict` op: asks the scheduler thread to checkpoint a running
    /// tenant off the fabric and requeue it, then waits (bounded by
    /// `wait`) for the eviction to land. Returns the op payload.
    ///
    /// # Errors
    ///
    /// A message naming the problem: unknown id, tenant not running, or
    /// the wait timing out.
    pub fn request_evict(&self, id: usize, wait: Duration) -> Result<Vec<(String, Json)>, String> {
        let mut g = self.state.lock().unwrap();
        let n = g.tenants.len();
        let t = g
            .tenants
            .get_mut(id)
            .ok_or_else(|| format!("unknown tenant {id} ({n} submitted)"))?;
        if t.phase != Phase::Running {
            return Err(format!("tenant {id} is {}, not running", t.phase.name()));
        }
        t.evict_requested = true;
        t.preempted = false;
        self.cv.notify_all();
        let deadline = Instant::now() + wait;
        while g.tenants[id].phase == Phase::Running {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "eviction of tenant {id} did not land within {}ms",
                    wait.as_millis()
                ));
            }
            let (guard, _) = self.cv.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
        let t = &g.tenants[id];
        Ok(vec![
            ("tenant".to_string(), Json::from(id)),
            ("bench".to_string(), Json::from(t.spec.bench.clone())),
            ("state".to_string(), Json::from(t.phase.name())),
            ("cycle".to_string(), Json::from(t.cycles)),
            ("resumable".to_string(), Json::from(t.checkpoint.is_some())),
        ])
    }

    /// A snapshot of the chip's accumulated hard faults (dead units,
    /// dead links, degraded banks), for observability payloads.
    pub fn health_json(&self) -> Json {
        let g = self.state.lock().unwrap();
        let m = g.health.faults();
        Json::obj([
            ("dead_pcus", Json::from(m.dead_pcus.len())),
            ("dead_pmus", Json::from(m.dead_pmus.len())),
            ("dead_links", Json::from(m.dead_links.len())),
            (
                "dead_banks",
                Json::from(m.dead_banks.values().sum::<usize>()),
            ),
        ])
    }

    /// Stops the scheduler thread (daemon drain). Unfinished tenants are
    /// abandoned; their final `tenants` listing keeps the last phase.
    pub fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.cv.notify_all();
    }
}

/// A tenant resident on the fabric: its kernel and round-robin weight.
/// Functional verification already happened at admission (simulation is
/// two-phase: the functional interpreter runs to completion while the
/// kernel is built, so the machine's final state exists before the first
/// timing cycle).
struct Resident {
    kernel: Box<SimKernel>,
    bench: Bench,
    weight: u64,
}

/// What one pass over the shared state decided the scheduler thread
/// should do next.
enum Decision {
    Stop,
    Evict(Vec<usize>),
    Admit(Vec<Admission>),
    Advance,
}

/// One planned admission: which tenant, onto which band, resuming which
/// checkpoint, compiled against which fault map (non-default only when
/// the band carries accumulated chip damage and the bitstream must route
/// around it).
struct Admission {
    id: usize,
    band: Partition,
    resume: Option<Checkpoint>,
    spec: SubmitSpec,
    faults: FaultMap,
}

/// The scheduler thread: admit, preempt, advance, repeat until
/// [`FabricScheduler::stop`].
pub fn scheduler_loop(
    f: &FabricScheduler,
    params: &PlasticineParams,
    cache: &CompileCache,
    metrics: &Metrics,
) {
    let mut residents: BTreeMap<usize, Resident> = BTreeMap::new();
    loop {
        let decision = {
            let mut g = f.state.lock().unwrap();
            loop {
                if g.stop {
                    break Decision::Stop;
                }
                let evicts: Vec<usize> = residents
                    .keys()
                    .copied()
                    .filter(|&id| g.tenants[id].evict_requested)
                    .collect();
                if !evicts.is_empty() {
                    break Decision::Evict(evicts);
                }
                let admits = plan_admissions(&mut g);
                if !admits.is_empty() {
                    break Decision::Admit(admits);
                }
                if plan_preemption(&mut g, &residents) {
                    continue; // eviction requests were just filed
                }
                if !residents.is_empty() {
                    break Decision::Advance;
                }
                g = f.cv.wait(g).unwrap();
            }
        };
        match decision {
            Decision::Stop => return,
            Decision::Evict(ids) => {
                for id in ids {
                    let r = residents.remove(&id).expect("evict targets a resident");
                    let c = r.kernel.checkpoint();
                    let cycle = c.cycle;
                    let mut g = f.state.lock().unwrap();
                    let t = &mut g.tenants[id];
                    let event = if t.preempted {
                        TenantEvent::Preempted
                    } else {
                        TenantEvent::Evicted
                    };
                    metrics.record_tenant(&t.spec.bench, event);
                    t.checkpoint = Some(c);
                    t.cycles = cycle;
                    t.phase = Phase::Queued;
                    t.preemptions += 1;
                    t.evict_requested = false;
                    t.preempted = false;
                    let band = t.partition.take().expect("resident owns a band");
                    t.anchor = Some(band);
                    g.table.release(&band);
                    g.pending.push_back(id);
                    f.cv.notify_all();
                }
            }
            Decision::Admit(list) => {
                for a in list {
                    match build_resident(
                        params,
                        cache,
                        &a.spec,
                        a.band,
                        &a.faults,
                        a.resume.as_ref(),
                    ) {
                        Ok(r) => {
                            residents.insert(a.id, r);
                            metrics.record_tenant(&a.spec.bench, TenantEvent::Admitted);
                            let mut g = f.state.lock().unwrap();
                            let t = &mut g.tenants[a.id];
                            if t.healing {
                                // The degraded tenant is back on the
                                // fabric: count the heal, and the
                                // migration when it landed off its
                                // degraded band.
                                t.healing = false;
                                t.healed += 1;
                                if t.anchor != Some(a.band) {
                                    t.migrations += 1;
                                }
                                metrics.record_tenant(&t.spec.bench, TenantEvent::Healed);
                            }
                            f.cv.notify_all();
                        }
                        Err(msg) => fail_tenant(f, metrics, a.id, msg),
                    }
                }
            }
            Decision::Advance => {
                let mut paused: Vec<(usize, u64)> = Vec::new();
                let mut finished: Vec<usize> = Vec::new();
                let mut failed: Vec<(usize, String)> = Vec::new();
                let mut degraded: Vec<(usize, Box<DegradedReport>)> = Vec::new();
                for (&id, r) in residents.iter_mut() {
                    let target = r.kernel.now() + r.weight * QUANTUM;
                    match r.kernel.advance(Some(target), None) {
                        Ok(Advance::Finished) => finished.push(id),
                        Ok(Advance::Paused) => paused.push((id, r.kernel.now())),
                        Err(SimError::FabricDegraded(report)) => degraded.push((id, report)),
                        Err(e) => failed.push((id, e.to_string())),
                    }
                }
                if !paused.is_empty() {
                    let mut g = f.state.lock().unwrap();
                    for (id, now) in paused {
                        g.tenants[id].cycles = now;
                    }
                }
                for id in finished {
                    let r = residents.remove(&id).expect("finished id is resident");
                    let (result, _) = r.kernel.finish();
                    let stats = stats_with_bench(&r.bench, &result);
                    let mut g = f.state.lock().unwrap();
                    let t = &mut g.tenants[id];
                    metrics.record_tenant(&t.spec.bench, TenantEvent::Completed);
                    t.phase = Phase::Done;
                    t.cycles = result.cycles;
                    t.stats = Some(stats);
                    t.checkpoint = None;
                    t.anchor = None;
                    t.evict_requested = false;
                    if let Some(band) = t.partition.take() {
                        g.table.release(&band);
                    }
                    f.cv.notify_all();
                }
                for (id, report) in degraded {
                    // Self-healing: the degraded exit already carries the
                    // tenant's auto-checkpoint and the arrivals that
                    // struck it. Fold the hard faults into the chip
                    // health map, release the damaged band, and requeue
                    // the tenant at the head of the line — admission
                    // will steer it onto a healthy pattern-equivalent
                    // band (or restart it degraded when none can exist).
                    residents.remove(&id);
                    let report = *report;
                    let mut g = f.state.lock().unwrap();
                    let t = &mut g.tenants[id];
                    metrics.record_tenant(&t.spec.bench, TenantEvent::Degraded);
                    let watermark = t.absorbed_through;
                    t.absorbed_through = report.cycle;
                    t.checkpoint = Some(report.checkpoint);
                    t.cycles = report.cycle;
                    t.phase = Phase::Queued;
                    t.healing = true;
                    t.evict_requested = false;
                    t.preempted = false;
                    let band = t.partition.take().expect("degraded tenant owned a band");
                    t.anchor = Some(band);
                    for (cycle, a) in &report.arrivals {
                        if *cycle > watermark {
                            g.health.absorb(a);
                        }
                    }
                    g.table.release(&band);
                    g.pending.push_front(id);
                    f.cv.notify_all();
                }
                for (id, msg) in failed {
                    residents.remove(&id);
                    fail_tenant(f, metrics, id, msg);
                }
            }
        }
    }
}

/// Walks the pending queue in FIFO order, best-fit allocating every
/// tenant that fits right now. Admitted tenants are marked `Running` (and
/// own their band) immediately so a failed compile can release cleanly.
///
/// Placement is health-aware: a checkpointed tenant lands only on a
/// *healthy* [pattern-equivalent](Partition::pattern_equivalent) band
/// (the unmodified bitstream cannot run over dead silicon, and a
/// degraded recompile would break the checkpoint's config guard); if
/// chip damage means no such band can ever exist the checkpoint is
/// forfeited and the tenant restarts degraded, charging the lost cycles
/// to its downtime counter. Fresh tenants prefer healthy bands and fall
/// back to compiling around the accumulated faults.
fn plan_admissions(g: &mut FabricState) -> Vec<Admission> {
    let mut admits = Vec::new();
    let mut still_pending = VecDeque::new();
    let mut queue = std::mem::take(&mut g.pending);
    while let Some(id) = queue.pop_front() {
        let (rows, channels, anchor) = {
            let t = &g.tenants[id];
            // A checkpointed tenant must land on a band its bitstream
            // relocates onto; a fresh tenant takes any best-fit band.
            let anchor = t.checkpoint.as_ref().and(t.anchor);
            (t.spec.rows, t.spec.channels, anchor)
        };
        let mix = g.mix;
        let rows_total = g.rows_total;
        let FabricState {
            table,
            topo,
            health,
            ..
        } = &mut *g;
        let healthy = |p: &Partition| health.band_is_healthy(topo, p);
        // `(band, clean)`: a clean band carries no accumulated fault and
        // runs the pristine bitstream; a dirty one needs the degraded
        // compile. `restart` forfeits the checkpoint.
        let mut restart = false;
        let placed: Option<(Partition, bool)> = match anchor {
            Some(a) => {
                match table.allocate_compatible_where(rows, channels, a.y0, mix, healthy) {
                    Some(band) => Some((band, true)),
                    None if healthy_compatible_band_exists(
                        topo, health, rows_total, rows, channels, a.y0, mix,
                    ) =>
                    {
                        // A healthy compatible band exists but is
                        // occupied: wait for it rather than forfeit the
                        // checkpoint.
                        None
                    }
                    None => {
                        // Chip damage covers every compatible offset:
                        // the checkpoint can never resume. Restart from
                        // scratch.
                        restart = true;
                        table
                            .allocate_where(rows, channels, healthy)
                            .map(|b| (b, true))
                            .or_else(|| table.allocate(rows, channels).map(|b| (b, false)))
                    }
                }
            }
            None => table
                .allocate_where(rows, channels, healthy)
                .map(|b| (b, true))
                .or_else(|| table.allocate(rows, channels).map(|b| (b, false))),
        };
        match placed {
            Some((band, clean)) => {
                let faults = if clean {
                    FaultMap::default()
                } else {
                    g.health.merged(&FaultMap::default())
                };
                let t = &mut g.tenants[id];
                if restart {
                    t.downtime_cycles += t.checkpoint.as_ref().map(|c| c.cycle).unwrap_or(0);
                    t.checkpoint = None;
                }
                t.phase = Phase::Running;
                t.partition = Some(band);
                admits.push(Admission {
                    id,
                    band,
                    resume: t.checkpoint.take(),
                    spec: t.spec.clone(),
                    faults,
                });
            }
            None => still_pending.push_back(id),
        }
    }
    g.pending = still_pending;
    admits
}

/// Could a healthy band pattern-equivalent to `anchor_y0` exist on an
/// *empty* chip? When even that fails, the accumulated damage blankets
/// every compatible offset and a checkpointed tenant waiting for one
/// would wait forever.
fn healthy_compatible_band_exists(
    topo: &Topology,
    health: &HealthMap,
    rows_total: usize,
    rows: usize,
    channels: usize,
    anchor_y0: usize,
    mix: GridMix,
) -> bool {
    let period = mix.vertical_period().max(1);
    let mut y0 = anchor_y0 % period;
    while y0 + rows <= rows_total {
        if health.band_is_healthy(topo, &Partition::new(y0, rows, channels)) {
            return true;
        }
        y0 += period;
    }
    false
}

/// When the head of the queue cannot fit but would after checkpointing
/// off every strictly smaller resident, files eviction requests for those
/// residents (once per waiting tenant). Returns whether any were filed.
fn plan_preemption(g: &mut FabricState, residents: &BTreeMap<usize, Resident>) -> bool {
    let Some(&head) = g.pending.front() else {
        return false;
    };
    let (rows, channels, fired) = {
        let t = &g.tenants[head];
        (t.spec.rows, t.spec.channels, t.preempt_fired)
    };
    if fired {
        return false;
    }
    let victims: Vec<usize> = residents
        .keys()
        .copied()
        .filter(|&id| g.tenants[id].spec.rows < rows)
        .collect();
    if victims.is_empty() {
        return false;
    }
    // Would the head fit once every smaller resident is gone? Count the
    // rows and channels the larger residents keep.
    let keep_rows: usize = residents
        .keys()
        .filter(|&&id| g.tenants[id].spec.rows >= rows)
        .map(|&id| g.tenants[id].spec.rows)
        .sum();
    let keep_channels: usize = residents
        .keys()
        .filter(|&&id| g.tenants[id].spec.rows >= rows)
        .map(|&id| g.tenants[id].spec.channels)
        .sum();
    if rows > g.rows_total - keep_rows || channels > g.channels_total - keep_channels {
        return false;
    }
    for id in victims {
        let t = &mut g.tenants[id];
        t.evict_requested = true;
        t.preempted = true;
    }
    g.tenants[head].preempt_fired = true;
    true
}

/// Compiles a tenant into its band (through the shared cache) and builds
/// its kernel, resuming from an eviction checkpoint when one exists.
/// `faults` is the chip damage the bitstream must route around (default
/// on a clean band — resumed checkpoints require it, since the fault map
/// participates in the checkpoint options guard).
fn build_resident(
    params: &PlasticineParams,
    cache: &CompileCache,
    spec: &SubmitSpec,
    band: Partition,
    faults: &FaultMap,
    resume: Option<&Checkpoint>,
) -> Result<Resident, String> {
    let bench = all(Scale(spec.scale))
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(&spec.bench))
        .ok_or_else(|| format!("unknown benchmark `{}`", spec.bench))?;
    let copts = CompileOptions {
        partition: Some(band),
        faults: faults.clone(),
        ..CompileOptions::new()
    };
    let cached = cache
        .compile_degraded(&bench.program, params, &copts)
        .map_err(|e| format!("compile: {e}"))?;
    let (out, prog, _degraded) = &*cached;
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let mut opts = SimOptions {
        step: spec.step,
        threads: spec.threads,
        ..SimOptions::default()
    };
    // The tenant simulates against exactly its DRAM-channel share.
    opts.dram.channels = band.channels;
    opts.faults = faults.clone();
    opts.timeline = spec.timeline.clone();
    if let Some(n) = spec.max_cycles {
        opts.max_cycles = n;
    }
    let kernel =
        SimKernel::new(prog, out, &mut m, &opts, false, resume).map_err(|e| e.to_string())?;
    // The functional pass ran to completion inside `SimKernel::new`;
    // verify the answer now and let the timing simulation proceed knowing
    // the tenant's output is already correct.
    bench
        .verify(&m)
        .map_err(|e| format!("verification failed: {e}"))?;
    Ok(Resident {
        kernel: Box::new(kernel),
        bench,
        weight: band.channels as u64,
    })
}

/// Publishes a tenant failure and releases its band.
fn fail_tenant(f: &FabricScheduler, metrics: &Metrics, id: usize, msg: String) {
    let mut g = f.state.lock().unwrap();
    let t = &mut g.tenants[id];
    metrics.record_tenant(&t.spec.bench, TenantEvent::Failed);
    t.phase = Phase::Failed;
    t.error = Some(msg);
    t.evict_requested = false;
    if let Some(band) = t.partition.take() {
        g.table.release(&band);
    }
    f.cv.notify_all();
}
