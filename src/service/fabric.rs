//! The multi-tenant fabric scheduler behind the `submit`/`tenants`/
//! `evict` serve ops.
//!
//! Tenants are programs compiled into disjoint fabric bands
//! ([`Partition`]) and admitted from a FIFO queue by best-fit against the
//! chip-level [`PartitionTable`]. One dedicated scheduler thread owns
//! every resident tenant's [`SimKernel`] and advances them in
//! deterministic weighted round-robin quanta — a tenant with a
//! `c`-channel share advances `c × QUANTUM` cycles per round, mirroring
//! the per-tenant DRAM-channel credit weights. Because co-resident bands
//! share no simulated resource, each tenant's final stats are
//! byte-identical to a solo run on a dedicated fabric of its partition's
//! geometry (the isolation invariant; see DESIGN.md §15).
//!
//! Preemption: when the tenant at the head of the queue cannot be placed
//! and strictly smaller tenants are resident, the smaller residents are
//! checkpointed off the fabric and requeued; checkpoint config hashes are
//! partition-offset-normalized, so a preempted tenant later resumes on
//! any free [pattern-equivalent](Partition::pattern_equivalent) band —
//! same height, offset congruent modulo the grid mix's vertical period
//! (same parity on the checkerboard) — and still finishes with
//! byte-identical stats. Admission planning enforces the equivalence
//! when it places a checkpointed tenant. The `evict` op drives the same
//! path on demand.
//!
//! Control-plane calls ([`FabricScheduler::submit`],
//! [`FabricScheduler::tenants_json`], [`FabricScheduler::request_evict`])
//! touch only the metadata table under a mutex; the kernels themselves
//! live on the scheduler thread, so a long-running quantum never blocks
//! observability.

use super::metrics::{Metrics, TenantEvent};
use super::stats_with_bench;
use plasticine_arch::{GridMix, Partition, PartitionTable, PlasticineParams};
use plasticine_compiler::{CompileCache, CompileOptions};
use plasticine_json::Json;
use plasticine_ppir::Machine;
use plasticine_sim::{Advance, Checkpoint, SimKernel, SimOptions, StepMode};
use plasticine_workloads::{all, Bench, Scale};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Cycles a weight-1 tenant advances per scheduler round. Small enough
/// that evictions land promptly, large enough that the round-robin
/// overhead (a map walk) is negligible against simulated work.
pub const QUANTUM: u64 = 2048;

/// What a `submit` request asks for.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Canonical benchmark name (already resolved by the server).
    pub bench: String,
    /// Problem-size multiplier.
    pub scale: usize,
    /// Fabric rows requested.
    pub rows: usize,
    /// DRAM-channel share requested (also the round-robin credit weight).
    pub channels: usize,
    /// Step mode for the tenant's simulation.
    pub step: StepMode,
    /// Simulator threads for the tenant's simulation.
    pub threads: usize,
    /// Cycle budget (`None` = simulator default).
    pub max_cycles: Option<u64>,
}

/// Lifecycle of a tenant. `Queued` covers both a fresh submission and a
/// preempted/evicted tenant waiting to resume (the latter carries a
/// checkpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

struct TenantEntry {
    spec: SubmitSpec,
    phase: Phase,
    partition: Option<Partition>,
    /// The band the live checkpoint was taken on. A resumed tenant may
    /// only be placed on a [pattern-equivalent](Partition::pattern_equivalent)
    /// band — same height, offset congruent modulo the grid mix's
    /// vertical period — or the checkpoint guard will (rightly) refuse
    /// the relocated bitstream.
    anchor: Option<Partition>,
    checkpoint: Option<Checkpoint>,
    cycles: u64,
    preemptions: u64,
    /// This waiting tenant already triggered one preemption sweep;
    /// never fire a second for it (livelock guard).
    preempt_fired: bool,
    /// Eviction requested (by the `evict` op or the preemption planner);
    /// honored by the scheduler thread at the next quantum boundary.
    evict_requested: bool,
    /// The pending eviction is a scheduler preemption, not an operator
    /// request (metrics attribution).
    preempted: bool,
    error: Option<String>,
    stats: Option<Json>,
}

struct FabricState {
    table: PartitionTable,
    mix: GridMix,
    rows_total: usize,
    channels_total: usize,
    tenants: Vec<TenantEntry>,
    pending: VecDeque<usize>,
    stop: bool,
}

/// Shared scheduler state: the metadata table every transport thread may
/// read, and the command flags the scheduler thread consumes.
pub struct FabricScheduler {
    state: Mutex<FabricState>,
    cv: Condvar,
}

impl FabricScheduler {
    /// An empty scheduler over a chip's fabric rows and DRAM channels.
    pub fn new(params: &PlasticineParams) -> FabricScheduler {
        FabricScheduler {
            state: Mutex::new(FabricState {
                table: PartitionTable::new(params),
                mix: params.mix,
                rows_total: params.rows,
                channels_total: params.coalescing_units,
                tenants: Vec::new(),
                pending: VecDeque::new(),
                stop: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queues a tenant for admission. Returns its id.
    ///
    /// # Errors
    ///
    /// A usage-class message when the requested geometry cannot ever fit
    /// the chip (zero or over-size rows/channels).
    pub fn submit(&self, spec: SubmitSpec) -> Result<usize, String> {
        let mut g = self.state.lock().unwrap();
        if spec.rows == 0 || spec.rows > g.rows_total {
            return Err(format!(
                "`rows` must be in 1..={} (got {})",
                g.rows_total, spec.rows
            ));
        }
        if spec.channels == 0 || spec.channels > g.channels_total {
            return Err(format!(
                "`channels` must be in 1..={} (got {})",
                g.channels_total, spec.channels
            ));
        }
        if g.stop {
            return Err("scheduler is shut down".to_string());
        }
        let id = g.tenants.len();
        g.tenants.push(TenantEntry {
            spec,
            phase: Phase::Queued,
            partition: None,
            anchor: None,
            checkpoint: None,
            cycles: 0,
            preemptions: 0,
            preempt_fired: false,
            evict_requested: false,
            preempted: false,
            error: None,
            stats: None,
        });
        g.pending.push_back(id);
        self.cv.notify_all();
        Ok(id)
    }

    /// The `tenants` op payload: every tenant ever submitted, in id
    /// order, with its current phase, band, progress, and (once done) the
    /// same stats object a solo run reports.
    pub fn tenants_json(&self) -> Json {
        let g = self.state.lock().unwrap();
        Json::Arr(
            g.tenants
                .iter()
                .enumerate()
                .map(|(id, t)| {
                    let mut pairs = vec![
                        ("tenant".to_string(), Json::from(id)),
                        ("bench".to_string(), Json::from(t.spec.bench.clone())),
                        ("state".to_string(), Json::from(t.phase.name())),
                        ("rows".to_string(), Json::from(t.spec.rows)),
                        ("channels".to_string(), Json::from(t.spec.channels)),
                        ("cycles".to_string(), Json::from(t.cycles)),
                    ];
                    if let Some(p) = &t.partition {
                        pairs.push(("partition".to_string(), Json::from(p.to_string())));
                    }
                    if t.preemptions > 0 {
                        pairs.push(("preemptions".to_string(), Json::from(t.preemptions)));
                    }
                    if t.checkpoint.is_some() {
                        pairs.push(("resumable".to_string(), Json::from(true)));
                    }
                    if let Some(e) = &t.error {
                        pairs.push(("error".to_string(), Json::from(e.clone())));
                    }
                    if let Some(s) = &t.stats {
                        pairs.push(("stats".to_string(), s.clone()));
                    }
                    Json::Obj(pairs)
                })
                .collect(),
        )
    }

    /// The `evict` op: asks the scheduler thread to checkpoint a running
    /// tenant off the fabric and requeue it, then waits (bounded by
    /// `wait`) for the eviction to land. Returns the op payload.
    ///
    /// # Errors
    ///
    /// A message naming the problem: unknown id, tenant not running, or
    /// the wait timing out.
    pub fn request_evict(&self, id: usize, wait: Duration) -> Result<Vec<(String, Json)>, String> {
        let mut g = self.state.lock().unwrap();
        let n = g.tenants.len();
        let t = g
            .tenants
            .get_mut(id)
            .ok_or_else(|| format!("unknown tenant {id} ({n} submitted)"))?;
        if t.phase != Phase::Running {
            return Err(format!("tenant {id} is {}, not running", t.phase.name()));
        }
        t.evict_requested = true;
        t.preempted = false;
        self.cv.notify_all();
        let deadline = Instant::now() + wait;
        while g.tenants[id].phase == Phase::Running {
            let now = Instant::now();
            if now >= deadline {
                return Err(format!(
                    "eviction of tenant {id} did not land within {}ms",
                    wait.as_millis()
                ));
            }
            let (guard, _) = self.cv.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
        let t = &g.tenants[id];
        Ok(vec![
            ("tenant".to_string(), Json::from(id)),
            ("bench".to_string(), Json::from(t.spec.bench.clone())),
            ("state".to_string(), Json::from(t.phase.name())),
            ("cycle".to_string(), Json::from(t.cycles)),
            ("resumable".to_string(), Json::from(t.checkpoint.is_some())),
        ])
    }

    /// Stops the scheduler thread (daemon drain). Unfinished tenants are
    /// abandoned; their final `tenants` listing keeps the last phase.
    pub fn stop(&self) {
        self.state.lock().unwrap().stop = true;
        self.cv.notify_all();
    }
}

/// A tenant resident on the fabric: its kernel and round-robin weight.
/// Functional verification already happened at admission (simulation is
/// two-phase: the functional interpreter runs to completion while the
/// kernel is built, so the machine's final state exists before the first
/// timing cycle).
struct Resident {
    kernel: Box<SimKernel>,
    bench: Bench,
    weight: u64,
}

/// What one pass over the shared state decided the scheduler thread
/// should do next.
enum Decision {
    Stop,
    Evict(Vec<usize>),
    Admit(Vec<(usize, Partition, Option<Checkpoint>, SubmitSpec)>),
    Advance,
}

/// The scheduler thread: admit, preempt, advance, repeat until
/// [`FabricScheduler::stop`].
pub fn scheduler_loop(
    f: &FabricScheduler,
    params: &PlasticineParams,
    cache: &CompileCache,
    metrics: &Metrics,
) {
    let mut residents: BTreeMap<usize, Resident> = BTreeMap::new();
    loop {
        let decision = {
            let mut g = f.state.lock().unwrap();
            loop {
                if g.stop {
                    break Decision::Stop;
                }
                let evicts: Vec<usize> = residents
                    .keys()
                    .copied()
                    .filter(|&id| g.tenants[id].evict_requested)
                    .collect();
                if !evicts.is_empty() {
                    break Decision::Evict(evicts);
                }
                let admits = plan_admissions(&mut g);
                if !admits.is_empty() {
                    break Decision::Admit(admits);
                }
                if plan_preemption(&mut g, &residents) {
                    continue; // eviction requests were just filed
                }
                if !residents.is_empty() {
                    break Decision::Advance;
                }
                g = f.cv.wait(g).unwrap();
            }
        };
        match decision {
            Decision::Stop => return,
            Decision::Evict(ids) => {
                for id in ids {
                    let r = residents.remove(&id).expect("evict targets a resident");
                    let c = r.kernel.checkpoint();
                    let cycle = c.cycle;
                    let mut g = f.state.lock().unwrap();
                    let t = &mut g.tenants[id];
                    let event = if t.preempted {
                        TenantEvent::Preempted
                    } else {
                        TenantEvent::Evicted
                    };
                    metrics.record_tenant(&t.spec.bench, event);
                    t.checkpoint = Some(c);
                    t.cycles = cycle;
                    t.phase = Phase::Queued;
                    t.preemptions += 1;
                    t.evict_requested = false;
                    t.preempted = false;
                    let band = t.partition.take().expect("resident owns a band");
                    t.anchor = Some(band);
                    g.table.release(&band);
                    g.pending.push_back(id);
                    f.cv.notify_all();
                }
            }
            Decision::Admit(list) => {
                for (id, band, resume, spec) in list {
                    match build_resident(params, cache, &spec, band, resume.as_ref()) {
                        Ok(r) => {
                            residents.insert(id, r);
                            metrics.record_tenant(&spec.bench, TenantEvent::Admitted);
                            f.cv.notify_all();
                        }
                        Err(msg) => fail_tenant(f, metrics, id, msg),
                    }
                }
            }
            Decision::Advance => {
                let mut paused: Vec<(usize, u64)> = Vec::new();
                let mut finished: Vec<usize> = Vec::new();
                let mut failed: Vec<(usize, String)> = Vec::new();
                for (&id, r) in residents.iter_mut() {
                    let target = r.kernel.now() + r.weight * QUANTUM;
                    match r.kernel.advance(Some(target), None) {
                        Ok(Advance::Finished) => finished.push(id),
                        Ok(Advance::Paused) => paused.push((id, r.kernel.now())),
                        Err(e) => failed.push((id, e.to_string())),
                    }
                }
                if !paused.is_empty() {
                    let mut g = f.state.lock().unwrap();
                    for (id, now) in paused {
                        g.tenants[id].cycles = now;
                    }
                }
                for id in finished {
                    let r = residents.remove(&id).expect("finished id is resident");
                    let (result, _) = r.kernel.finish();
                    let stats = stats_with_bench(&r.bench, &result);
                    let mut g = f.state.lock().unwrap();
                    let t = &mut g.tenants[id];
                    metrics.record_tenant(&t.spec.bench, TenantEvent::Completed);
                    t.phase = Phase::Done;
                    t.cycles = result.cycles;
                    t.stats = Some(stats);
                    t.checkpoint = None;
                    t.anchor = None;
                    t.evict_requested = false;
                    if let Some(band) = t.partition.take() {
                        g.table.release(&band);
                    }
                    f.cv.notify_all();
                }
                for (id, msg) in failed {
                    residents.remove(&id);
                    fail_tenant(f, metrics, id, msg);
                }
            }
        }
    }
}

/// Walks the pending queue in FIFO order, best-fit allocating every
/// tenant that fits right now. Admitted tenants are marked `Running` (and
/// own their band) immediately so a failed compile can release cleanly.
fn plan_admissions(g: &mut FabricState) -> Vec<(usize, Partition, Option<Checkpoint>, SubmitSpec)> {
    let mut admits = Vec::new();
    let mut still_pending = VecDeque::new();
    while let Some(id) = g.pending.pop_front() {
        let (rows, channels, anchor) = {
            let t = &g.tenants[id];
            // A checkpointed tenant must land on a band its bitstream
            // relocates onto; a fresh tenant takes any best-fit band.
            let anchor = t.checkpoint.as_ref().and(t.anchor);
            (t.spec.rows, t.spec.channels, anchor)
        };
        let mix = g.mix;
        match match anchor {
            Some(a) => g.table.allocate_compatible(rows, channels, a.y0, mix),
            None => g.table.allocate(rows, channels),
        } {
            Some(band) => {
                let t = &mut g.tenants[id];
                t.phase = Phase::Running;
                t.partition = Some(band);
                admits.push((id, band, t.checkpoint.take(), t.spec.clone()));
            }
            None => still_pending.push_back(id),
        }
    }
    g.pending = still_pending;
    admits
}

/// When the head of the queue cannot fit but would after checkpointing
/// off every strictly smaller resident, files eviction requests for those
/// residents (once per waiting tenant). Returns whether any were filed.
fn plan_preemption(g: &mut FabricState, residents: &BTreeMap<usize, Resident>) -> bool {
    let Some(&head) = g.pending.front() else {
        return false;
    };
    let (rows, channels, fired) = {
        let t = &g.tenants[head];
        (t.spec.rows, t.spec.channels, t.preempt_fired)
    };
    if fired {
        return false;
    }
    let victims: Vec<usize> = residents
        .keys()
        .copied()
        .filter(|&id| g.tenants[id].spec.rows < rows)
        .collect();
    if victims.is_empty() {
        return false;
    }
    // Would the head fit once every smaller resident is gone? Count the
    // rows and channels the larger residents keep.
    let keep_rows: usize = residents
        .keys()
        .filter(|&&id| g.tenants[id].spec.rows >= rows)
        .map(|&id| g.tenants[id].spec.rows)
        .sum();
    let keep_channels: usize = residents
        .keys()
        .filter(|&&id| g.tenants[id].spec.rows >= rows)
        .map(|&id| g.tenants[id].spec.channels)
        .sum();
    if rows > g.rows_total - keep_rows || channels > g.channels_total - keep_channels {
        return false;
    }
    for id in victims {
        let t = &mut g.tenants[id];
        t.evict_requested = true;
        t.preempted = true;
    }
    g.tenants[head].preempt_fired = true;
    true
}

/// Compiles a tenant into its band (through the shared cache) and builds
/// its kernel, resuming from an eviction checkpoint when one exists.
fn build_resident(
    params: &PlasticineParams,
    cache: &CompileCache,
    spec: &SubmitSpec,
    band: Partition,
    resume: Option<&Checkpoint>,
) -> Result<Resident, String> {
    let bench = all(Scale(spec.scale))
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(&spec.bench))
        .ok_or_else(|| format!("unknown benchmark `{}`", spec.bench))?;
    let copts = CompileOptions {
        partition: Some(band),
        ..CompileOptions::new()
    };
    let cached = cache
        .compile_degraded(&bench.program, params, &copts)
        .map_err(|e| format!("compile: {e}"))?;
    let (out, prog, _degraded) = &*cached;
    let mut m = Machine::new(prog);
    bench.load(&mut m);
    let mut opts = SimOptions {
        step: spec.step,
        threads: spec.threads,
        ..SimOptions::default()
    };
    // The tenant simulates against exactly its DRAM-channel share.
    opts.dram.channels = band.channels;
    if let Some(n) = spec.max_cycles {
        opts.max_cycles = n;
    }
    let kernel =
        SimKernel::new(prog, out, &mut m, &opts, false, resume).map_err(|e| e.to_string())?;
    // The functional pass ran to completion inside `SimKernel::new`;
    // verify the answer now and let the timing simulation proceed knowing
    // the tenant's output is already correct.
    bench
        .verify(&m)
        .map_err(|e| format!("verification failed: {e}"))?;
    Ok(Resident {
        kernel: Box::new(kernel),
        bench,
        weight: band.channels as u64,
    })
}

/// Publishes a tenant failure and releases its band.
fn fail_tenant(f: &FabricScheduler, metrics: &Metrics, id: usize, msg: String) {
    let mut g = f.state.lock().unwrap();
    let t = &mut g.tenants[id];
    metrics.record_tenant(&t.spec.bench, TenantEvent::Failed);
    t.phase = Phase::Failed;
    t.error = Some(msg);
    t.evict_requested = false;
    if let Some(band) = t.partition.take() {
        g.table.release(&band);
    }
    f.cv.notify_all();
}
