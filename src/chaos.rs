//! Chaos soak harness and the solo self-healing loop.
//!
//! The robustness layer's two entry points outside the serve daemon:
//!
//! * [`run_healed`] drives one benchmark through an online fault
//!   timeline the way the fabric scheduler would: every degraded exit
//!   absorbs the new hard faults into a local [`HealthMap`], relocates
//!   the run to the lowest healthy
//!   [pattern-equivalent](Partition::pattern_equivalent) band, and
//!   resumes the degrade checkpoint there. The healed run's final stats
//!   are byte-identical to manually resuming the same checkpoint on the
//!   relocated band ([`resume_on`]) — the healing invariant
//!   `tests/self_healing.rs` pins for every Table 4 workload.
//! * [`soak`] replays seeded random fault timelines against solo,
//!   multi-tenant, and scheduler workloads, asserting the chaos
//!   invariants: no panics, typed statuses only, and healed stats that
//!   match the manual-resume baseline bit for bit. `plasticine-run
//!   chaos` is a thin CLI shell over it.
//!
//! Everything here is deterministic: the timelines are sampled from
//! pinned seeds, the simulator is deterministic in both step modes, and
//! the soak derives each iteration's workload and mode from its seed —
//! the same seed list always produces the same report.

use crate::service::fabric::{scheduler_loop, FabricScheduler, SubmitSpec};
use crate::service::metrics::Metrics;
use plasticine_arch::{
    FaultTimeline, FaultTimelineSpec, HealthMap, Partition, PlasticineParams, Topology,
};
use plasticine_compiler::{compile_degraded, CompileCache, CompileOptions};
use plasticine_json::Json;
use plasticine_ppir::Machine;
use plasticine_sim::{
    simulate_checkpointed, Checkpoint, CheckpointPolicy, ExitStatus, MultiSim, SimError,
    SimOptions, SimResult,
};
use plasticine_workloads::{all, Bench, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Outcome of a self-healed solo run.
#[derive(Debug)]
pub struct HealReport {
    /// Final stats, byte-identical to an unhealed run resumed manually
    /// through the same checkpoint chain.
    pub result: SimResult,
    /// Degraded exits healed (0 = the timeline never impacted the run).
    pub heals: u64,
    /// Heals that landed on a band other than the one that degraded.
    pub migrations: u64,
    /// Band history: the starting band followed by one entry per heal.
    pub bands: Vec<Partition>,
    /// Cycle of each degraded exit, in order.
    pub degrade_cycles: Vec<u64>,
}

/// Compiles `bench` into `band` (against `opts.faults`) and simulates it,
/// optionally resuming a checkpoint. The one code path every healing
/// surface shares, so healed and manual runs cannot drift apart.
fn run_segment(
    bench: &Bench,
    params: &PlasticineParams,
    band: Partition,
    opts: &SimOptions,
    resume: Option<&Checkpoint>,
) -> Result<SimResult, SimError> {
    let copts = CompileOptions {
        partition: Some(band),
        faults: opts.faults.clone(),
        ..CompileOptions::new()
    };
    let (out, prog, _notes) = compile_degraded(&bench.program, params, &copts)
        .map_err(|e| SimError::Config(format!("compile: {e}")))?;
    let mut m = Machine::new(&prog);
    bench.load(&mut m);
    let mut o = opts.clone();
    o.dram.channels = band.channels;
    let policy = CheckpointPolicy {
        every: None,
        on_error: false,
    };
    let r = simulate_checkpointed(&prog, &out, &mut m, &o, policy, resume, &mut |_| {})?;
    bench
        .verify(&m)
        .map_err(|e| SimError::Config(format!("verification failed: {e}")))?;
    Ok(r)
}

/// Resumes `resume` on `band` and runs to completion — the manual
/// baseline a healed run must match byte for byte.
///
/// # Errors
///
/// Every [`run_segment`] error, including a further
/// [`SimError::FabricDegraded`] when the timeline strikes again.
pub fn resume_on(
    bench: &Bench,
    params: &PlasticineParams,
    band: Partition,
    opts: &SimOptions,
    resume: &Checkpoint,
) -> Result<SimResult, SimError> {
    run_segment(bench, params, band, opts, Some(resume))
}

/// The lowest healthy band pattern-equivalent to `cur` (which may be
/// `cur` itself when the damage missed it — e.g. a channel failure, which
/// is tenant-relative and leaves the fabric intact).
fn next_healthy_band(
    topo: &Topology,
    health: &HealthMap,
    params: &PlasticineParams,
    cur: &Partition,
) -> Option<Partition> {
    let period = params.mix.vertical_period().max(1);
    let mut y0 = cur.y0 % period;
    while y0 + cur.rows <= params.rows {
        let cand = Partition::new(y0, cur.rows, cur.channels);
        if health.band_is_healthy(topo, &cand) {
            return Some(cand);
        }
        y0 += period;
    }
    None
}

/// Runs `bench` on `band` under `opts` (whose `timeline` schedules the
/// fault arrivals), healing through every degraded exit: the new hard
/// faults join a local [`HealthMap`], the run relocates to the lowest
/// healthy pattern-equivalent band, and the degrade checkpoint resumes
/// there. This is the solo mirror of the fabric scheduler's healing loop.
///
/// `opts.faults` must be the map the run started under (normally the
/// pristine default): the checkpoint options guard requires every resume
/// to present the same base map and timeline, which is exactly what makes
/// the healed run bit-identical to a manual resume.
///
/// # Errors
///
/// [`SimError::FabricDegraded`] when `max_heals` is exhausted or chip
/// damage covers every compatible band (the final report is returned so
/// the caller still holds the last checkpoint); any other simulation
/// error propagates unchanged.
pub fn run_healed(
    bench: &Bench,
    params: &PlasticineParams,
    band: Partition,
    opts: &SimOptions,
    max_heals: u32,
) -> Result<HealReport, SimError> {
    let topo = Topology::new(params);
    let mut health = HealthMap::new();
    let mut cur = band;
    let mut resume: Option<Checkpoint> = None;
    let mut heals = 0u64;
    let mut migrations = 0u64;
    let mut bands = vec![band];
    let mut degrade_cycles = Vec::new();
    // Re-degraded segments replay the fired prefix of the timeline, so
    // their reports list old arrivals again; the watermark keeps
    // bank-failure counters from double-absorbing them.
    let mut watermark = 0u64;
    loop {
        match run_segment(bench, params, cur, opts, resume.as_ref()) {
            Ok(result) => {
                return Ok(HealReport {
                    result,
                    heals,
                    migrations,
                    bands,
                    degrade_cycles,
                });
            }
            Err(SimError::FabricDegraded(report)) => {
                if heals >= u64::from(max_heals) {
                    return Err(SimError::FabricDegraded(report));
                }
                degrade_cycles.push(report.cycle);
                for (cycle, a) in &report.arrivals {
                    if *cycle > watermark {
                        health.absorb(a);
                    }
                }
                watermark = report.cycle;
                let Some(next) = next_healthy_band(&topo, &health, params, &cur) else {
                    return Err(SimError::FabricDegraded(report));
                };
                if next != cur {
                    migrations += 1;
                }
                heals += 1;
                bands.push(next);
                resume = Some(report.checkpoint);
                cur = next;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Which surface a soak iteration exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakMode {
    /// One benchmark, one band, the [`run_healed`] loop.
    Solo,
    /// Two co-resident tenants on a [`MultiSim`]; the timeline strikes
    /// tenant A, and tenant B's isolation is byte-checked afterwards.
    Multi,
    /// A live [`FabricScheduler`] healing a submitted tenant.
    Sched,
}

impl SoakMode {
    /// Stable name used in reports and the CLI `--modes` list.
    pub fn name(self) -> &'static str {
        match self {
            SoakMode::Solo => "solo",
            SoakMode::Multi => "multi",
            SoakMode::Sched => "sched",
        }
    }

    /// Parses a `--modes` item.
    pub fn parse(s: &str) -> Option<SoakMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "solo" | "run" => Some(SoakMode::Solo),
            "multi" => Some(SoakMode::Multi),
            "sched" | "serve" => Some(SoakMode::Sched),
            _ => None,
        }
    }
}

/// Soak harness configuration. Iteration `i` (seed `i + 1`) runs
/// `benches[i % len]` in `modes[i % len]` — fully determined by the
/// config, so two soaks with the same config produce the same report.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Benchmarks to rotate through (canonical Table 4 names).
    pub benches: Vec<String>,
    /// Problem-size multiplier.
    pub scale: usize,
    /// Number of pinned seeds (iterations); seeds are `1..=seeds`.
    pub seeds: u64,
    /// Step mode for every simulation in the soak.
    pub step: plasticine_sim::StepMode,
    /// Simulator threads for every simulation in the soak.
    pub threads: usize,
    /// Surfaces to rotate through.
    pub modes: Vec<SoakMode>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            benches: vec![
                "InnerProduct".to_string(),
                "OuterProduct".to_string(),
                "TPCHQ6".to_string(),
            ],
            scale: 1,
            seeds: 20,
            step: plasticine_sim::StepMode::default(),
            threads: 1,
            modes: vec![SoakMode::Solo, SoakMode::Multi, SoakMode::Sched],
        }
    }
}

/// One soak iteration's outcome.
#[derive(Debug, Clone)]
pub struct SoakIteration {
    /// The pinned seed.
    pub seed: u64,
    /// Benchmark exercised.
    pub bench: String,
    /// Surface exercised ([`SoakMode::name`]).
    pub mode: &'static str,
    /// `ok` (timeline never impacted), `healed`, a typed
    /// [`ExitStatus::name`], `failed` (scheduler-reported typed failure),
    /// or `panic`.
    pub status: String,
    /// Heals observed.
    pub heals: u64,
    /// Migrations observed.
    pub migrations: u64,
    /// An invariant violation, when one was detected (byte mismatch,
    /// panic, missing stats). `None` for a clean iteration.
    pub violation: Option<String>,
}

/// The soak's full outcome: every iteration plus the derived verdict.
#[derive(Debug)]
pub struct SoakReport {
    /// Per-iteration outcomes, in seed order.
    pub iterations: Vec<SoakIteration>,
}

impl SoakReport {
    /// Iterations that panicked (must be zero).
    pub fn panics(&self) -> usize {
        self.iterations
            .iter()
            .filter(|i| i.status == "panic")
            .count()
    }

    /// Iterations with a detected invariant violation (must be zero;
    /// typed degraded/failed statuses are *not* violations).
    pub fn violations(&self) -> usize {
        self.iterations
            .iter()
            .filter(|i| i.violation.is_some())
            .count()
    }

    /// Iterations that healed at least once.
    pub fn healed(&self) -> usize {
        self.iterations.iter().filter(|i| i.heals > 0).count()
    }

    /// The soak verdict: no panics and no invariant violations.
    pub fn passed(&self) -> bool {
        self.panics() == 0 && self.violations() == 0
    }

    /// The machine-readable report (`plasticine-run chaos --out`).
    pub fn to_json(&self) -> Json {
        let iters: Vec<Json> = self
            .iterations
            .iter()
            .map(|i| {
                let mut pairs = vec![
                    ("seed".to_string(), Json::from(i.seed)),
                    ("bench".to_string(), Json::from(i.bench.clone())),
                    ("mode".to_string(), Json::from(i.mode)),
                    ("status".to_string(), Json::from(i.status.clone())),
                    ("heals".to_string(), Json::from(i.heals)),
                    ("migrations".to_string(), Json::from(i.migrations)),
                ];
                if let Some(v) = &i.violation {
                    pairs.push(("violation".to_string(), Json::from(v.clone())));
                }
                Json::Obj(pairs)
            })
            .collect();
        Json::obj([
            (
                "summary",
                Json::obj([
                    ("iterations", Json::from(self.iterations.len())),
                    ("healed", Json::from(self.healed())),
                    ("panics", Json::from(self.panics())),
                    ("violations", Json::from(self.violations())),
                    ("passed", Json::from(self.passed())),
                ]),
            ),
            ("iterations", Json::Arr(iters)),
        ])
    }
}

/// Resolves a benchmark by canonical name at a scale.
fn find_bench(name: &str, scale: usize) -> Result<Bench, String> {
    all(Scale(scale))
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark `{name}`"))
}

/// The soak's per-seed fault timeline: a fixed mixed-fault spec (unit and
/// link deaths, a bank failure, a transient escalation) aimed at `band`,
/// sampled from `seed`. Goes through the public [`FaultTimelineSpec`]
/// grammar so the soak also exercises the CLI parse path.
fn soak_timeline(params: &PlasticineParams, seed: u64, band: Partition) -> FaultTimeline {
    let spec: FaultTimelineSpec = format!(
        "units=2,links=1,banks=1,esc=1,horizon=4096,seed={seed},band={}@{},detect=8",
        band.rows, band.y0
    )
    .parse()
    .expect("soak timeline spec is well-formed");
    FaultTimeline::sample(&Topology::new(params), &spec, band.channels)
}

/// Base simulation options for a soak iteration.
fn soak_opts(cfg: &SoakConfig, timeline: FaultTimeline) -> SimOptions {
    let mut opts = SimOptions {
        step: cfg.step,
        threads: cfg.threads,
        ..SimOptions::default()
    };
    opts.timeline = timeline;
    opts
}

fn blank_iteration(seed: u64, bench: &str, mode: SoakMode) -> SoakIteration {
    SoakIteration {
        seed,
        bench: bench.to_string(),
        mode: mode.name(),
        status: String::new(),
        heals: 0,
        migrations: 0,
        violation: None,
    }
}

/// Solo iteration: run plain, and when the timeline degrades the run,
/// heal it and byte-check the healed stats against a manual resume of the
/// plain run's own degrade checkpoint.
fn soak_solo(params: &PlasticineParams, cfg: &SoakConfig, seed: u64, name: &str) -> SoakIteration {
    let mut it = blank_iteration(seed, name, SoakMode::Solo);
    let bench = match find_bench(name, cfg.scale) {
        Ok(b) => b,
        Err(e) => {
            it.status = "failed".to_string();
            it.violation = Some(e);
            return it;
        }
    };
    let band = Partition::new(0, (params.rows / 2).max(1), 2.min(params.coalescing_units));
    let opts = soak_opts(cfg, soak_timeline(params, seed, band));
    match run_segment(&bench, params, band, &opts, None) {
        Ok(_) => it.status = "ok".to_string(),
        Err(SimError::FabricDegraded(report)) => match run_healed(&bench, params, band, &opts, 8) {
            Ok(h) => {
                it.heals = h.heals;
                it.migrations = h.migrations;
                it.status = "healed".to_string();
                if h.heals == 1 {
                    // The invariant: healed stats == resuming the degrade
                    // checkpoint on the heal band directly.
                    match resume_on(&bench, params, h.bands[1], &opts, &report.checkpoint) {
                        Ok(manual) => {
                            if manual.stats_json().compact() != h.result.stats_json().compact() {
                                it.violation = Some(format!(
                                    "seed {seed}: healed stats diverge from manual resume"
                                ));
                            }
                        }
                        Err(e) => it.violation = Some(format!("manual resume failed: {e}")),
                    }
                }
            }
            Err(e) => it.status = ExitStatus::from_sim_error(&e).name().to_string(),
        },
        Err(e) => it.status = ExitStatus::from_sim_error(&e).name().to_string(),
    }
    it
}

/// Multi iteration: tenants A and B co-resident, the timeline aimed at
/// A's band. A degraded A is expelled, relocated to a healthy compatible
/// band that avoids B, and re-admitted from its degrade checkpoint; B
/// must finish with stats byte-identical to its solo baseline (the
/// isolation invariant under chaos).
fn soak_multi(
    params: &PlasticineParams,
    cfg: &SoakConfig,
    seed: u64,
    name_a: &str,
    name_b: &str,
) -> SoakIteration {
    let mut it = blank_iteration(seed, name_a, SoakMode::Multi);
    let (bench_a, bench_b) = match (find_bench(name_a, cfg.scale), find_bench(name_b, cfg.scale)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            it.status = "failed".to_string();
            it.violation = Some(e);
            return it;
        }
    };
    let h = (params.rows / 4).max(1);
    let band_a = Partition::new(0, h, 1);
    let band_b = Partition::new(h, h, 1);
    let opts_a = soak_opts(cfg, soak_timeline(params, seed, band_a));
    let opts_b = soak_opts(cfg, FaultTimeline::default());
    // B's solo baseline on a dedicated fabric of its band's geometry.
    let b_solo = match run_segment(&bench_b, params, band_b, &opts_b, None) {
        Ok(r) => r,
        Err(e) => {
            it.status = ExitStatus::from_sim_error(&e).name().to_string();
            return it;
        }
    };
    let topo = Topology::new(params);
    let mut health = HealthMap::new();
    let mut watermark = 0u64;
    let mut cur_a = band_a;
    let mut ms = MultiSim::new(params.coalescing_units, 2048);
    let admit = |ms: &mut MultiSim,
                 bench: &Bench,
                 band: Partition,
                 opts: &SimOptions,
                 resume: Option<&Checkpoint>|
     -> Result<plasticine_sim::TenantId, SimError> {
        let copts = CompileOptions {
            partition: Some(band),
            faults: opts.faults.clone(),
            ..CompileOptions::new()
        };
        let (out, prog, _notes) = compile_degraded(&bench.program, params, &copts)
            .map_err(|e| SimError::Config(format!("compile: {e}")))?;
        let mut m = Machine::new(&prog);
        bench.load(&mut m);
        let mut o = opts.clone();
        o.dram.channels = band.channels;
        ms.admit(&bench.name, &prog, &out, &mut m, &o, resume)
    };
    let mut id_a = match admit(&mut ms, &bench_a, band_a, &opts_a, None) {
        Ok(id) => id,
        Err(e) => {
            it.status = ExitStatus::from_sim_error(&e).name().to_string();
            return it;
        }
    };
    let id_b = match admit(&mut ms, &bench_b, band_b, &opts_b, None) {
        Ok(id) => id,
        Err(e) => {
            it.status = ExitStatus::from_sim_error(&e).name().to_string();
            return it;
        }
    };
    let mut final_status: Option<String> = None;
    loop {
        match ms.round() {
            Ok(true) => break,
            Ok(false) => {}
            Err((tid, SimError::FabricDegraded(report))) if tid == id_a && it.heals < 8 => {
                ms.expel(tid);
                for (cycle, a) in &report.arrivals {
                    if *cycle > watermark {
                        health.absorb(a);
                    }
                }
                watermark = report.cycle;
                let period = params.mix.vertical_period().max(1);
                let mut next = None;
                let mut y0 = cur_a.y0 % period;
                while y0 + cur_a.rows <= params.rows {
                    let cand = Partition::new(y0, cur_a.rows, cur_a.channels);
                    let overlaps_b =
                        cand.y0 < band_b.y0 + band_b.rows && band_b.y0 < cand.y0 + cand.rows;
                    if !overlaps_b && health.band_is_healthy(&topo, &cand) {
                        next = Some(cand);
                        break;
                    }
                    y0 += period;
                }
                let Some(next) = next else {
                    final_status = Some("fabric_degraded".to_string());
                    break;
                };
                if next != cur_a {
                    it.migrations += 1;
                }
                it.heals += 1;
                match admit(&mut ms, &bench_a, next, &opts_a, Some(&report.checkpoint)) {
                    Ok(id) => id_a = id,
                    Err(e) => {
                        final_status = Some(ExitStatus::from_sim_error(&e).name().to_string());
                        break;
                    }
                }
                cur_a = next;
            }
            Err((_, e)) => {
                final_status = Some(ExitStatus::from_sim_error(&e).name().to_string());
                break;
            }
        }
    }
    if let Some(s) = final_status {
        // A is off the fabric (typed exit); drain B so its isolation
        // check still runs.
        it.status = s;
        let _ = ms.run();
    } else {
        it.status = if it.heals > 0 { "healed" } else { "ok" }.to_string();
    }
    let b = &ms.tenants()[id_b.0];
    match b.result() {
        Some(r) => {
            if r.stats_json().compact() != b_solo.stats_json().compact() {
                it.violation = Some(format!(
                    "seed {seed}: co-resident tenant B stats diverge from its solo baseline"
                ));
            }
        }
        None => {
            if it.violation.is_none() && it.status != "fabric_degraded" {
                it.violation = Some(format!("seed {seed}: tenant B never finished"));
            }
        }
    }
    it
}

/// Scheduler iteration: a live [`FabricScheduler`] thread heals a
/// submitted tenant through its timeline; the iteration asserts the
/// tenant reaches a terminal phase with stats (done) or a typed error
/// (failed) within a generous deadline.
fn soak_sched(params: &PlasticineParams, cfg: &SoakConfig, seed: u64, name: &str) -> SoakIteration {
    let mut it = blank_iteration(seed, name, SoakMode::Sched);
    let bench = match find_bench(name, cfg.scale) {
        Ok(b) => b,
        Err(e) => {
            it.status = "failed".to_string();
            it.violation = Some(e);
            return it;
        }
    };
    let rows = (params.rows / 2).max(1);
    let channels = 2.min(params.coalescing_units);
    let band = Partition::new(0, rows, channels);
    let timeline = soak_timeline(params, seed, band);
    let f = FabricScheduler::new(params);
    let cache = CompileCache::new();
    let metrics = Metrics::new();
    let spec = SubmitSpec {
        bench: bench.name.clone(),
        scale: cfg.scale,
        rows,
        channels,
        step: cfg.step,
        threads: cfg.threads,
        max_cycles: None,
        timeline,
    };
    std::thread::scope(|s| {
        s.spawn(|| scheduler_loop(&f, params, &cache, &metrics));
        let id = match f.submit(spec) {
            Ok(id) => id,
            Err(e) => {
                it.status = "failed".to_string();
                it.violation = Some(e);
                f.stop();
                return;
            }
        };
        let deadline = Instant::now() + Duration::from_secs(300);
        loop {
            std::thread::sleep(Duration::from_millis(10));
            let tenants = f.tenants_json();
            let t = tenants.as_arr().and_then(|a| a.get(id));
            let state = t
                .and_then(|t| t.get("state"))
                .and_then(Json::as_str)
                .unwrap_or("");
            match state {
                "done" => {
                    let t = t.expect("state was read from the entry");
                    it.heals = t.get("healed").and_then(Json::as_u64).unwrap_or(0);
                    it.migrations = t.get("migrations").and_then(Json::as_u64).unwrap_or(0);
                    it.status = if it.heals > 0 { "healed" } else { "ok" }.to_string();
                    if t.get("stats").is_none() {
                        it.violation = Some(format!("seed {seed}: tenant done without stats"));
                    }
                    break;
                }
                "failed" => {
                    it.status = "failed".to_string();
                    if t.and_then(|t| t.get("error")).is_none() {
                        it.violation =
                            Some(format!("seed {seed}: tenant failed without a typed error"));
                    }
                    break;
                }
                _ => {}
            }
            if Instant::now() > deadline {
                it.status = "failed".to_string();
                it.violation = Some(format!("seed {seed}: scheduler soak timed out"));
                break;
            }
        }
        f.stop();
    });
    it
}

/// Runs the chaos soak: `cfg.seeds` iterations, each replaying a pinned
/// random fault timeline against one workload on one surface, every
/// iteration wrapped in `catch_unwind` so a panic is *recorded* (and
/// fails the soak) instead of killing it.
pub fn soak(params: &PlasticineParams, cfg: &SoakConfig) -> SoakReport {
    let mut iterations = Vec::new();
    for i in 0..cfg.seeds {
        let seed = i + 1;
        let name = &cfg.benches[(i as usize) % cfg.benches.len()];
        let name_b = &cfg.benches[(i as usize + 1) % cfg.benches.len()];
        let mode = cfg.modes[(i as usize) % cfg.modes.len()];
        let out = catch_unwind(AssertUnwindSafe(|| match mode {
            SoakMode::Solo => soak_solo(params, cfg, seed, name),
            SoakMode::Multi => soak_multi(params, cfg, seed, name, name_b),
            SoakMode::Sched => soak_sched(params, cfg, seed, name),
        }));
        iterations.push(out.unwrap_or_else(|_| {
            let mut it = blank_iteration(seed, name, mode);
            it.status = "panic".to_string();
            it.violation = Some(format!("seed {seed}: iteration panicked"));
            it
        }));
    }
    SoakReport { iterations }
}
