//! Resumable multi-objective design-space search (`plasticine-run dse
//! search`).
//!
//! The Figure 7 machinery in `plasticine-models` sweeps one PCU
//! parameter at a time against the area model alone. This module runs
//! the full pipeline per candidate: enumerate a [`DseGrid`] of
//! `PlasticineParams` points, compile every selected benchmark for each
//! point through a shared [`CompileCache`], simulate it, price the chip
//! with the area and power models, and fold the survivors into a Pareto
//! frontier over {perf, area, perf-per-W} with dominated configurations
//! pruned incrementally.
//!
//! ## Determinism
//!
//! Point evaluation is independent per point and the simulator is
//! byte-identical at any thread count, so the only ordering freedom is
//! which worker evaluates which point. Results are collected by
//! enumeration index and the frontier is rebuilt from those indexed
//! results, so the frontier — and the whole report — is identical
//! across worker counts.
//!
//! ## Resume
//!
//! Progress is journaled through the shared [`Journal`] (atomic
//! temp+rename writes). Each point+workload-mix gets a stable key;
//! `done` entries carry the measured objectives as exact f64 bit
//! patterns, so a resumed search rebuilds its frontier byte-identically
//! without re-simulating finished points. `infeasible` entries are
//! final (the design cannot change between invocations); `failed` and
//! interrupted `running` entries are re-run.
//!
//! ## Typed skips
//!
//! A point that cannot be built is not a failure of the search: invalid
//! parameters, a program that does not fit even after
//! `compile_degraded`'s parallelization reduction, a deadlocked
//! schedule, or a blown cycle budget all mark the point
//! [`JobStatus::Infeasible`] and the search continues. Only
//! verification mismatches and I/O errors are real failures, and the
//! search exits with the first failed point's exit-code class.

use crate::arch::{DseGrid, DsePoint};
use crate::compiler::{CompileCache, CompileOptions};
use crate::journal::{JobStatus, Journal, JournalEntry};
use crate::json::decode::hex_of;
use crate::json::{hash::fnv1a_str, Json};
use crate::models::dse::{FrontierPoint, Objectives, ParetoFrontier};
use crate::models::{AreaModel, PowerModel};
use crate::ppir::Machine;
use crate::sim::{simulate, ExitStatus, SimOptions, StepMode};
use crate::workloads::{Bench, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the search needs besides the workload mix.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The candidate grid (cross product of all axes).
    pub grid: DseGrid,
    /// Workload scale the mix is instantiated at.
    pub scale: Scale,
    /// Worker threads evaluating points concurrently.
    pub jobs: usize,
    /// Time-advance strategy for every simulation.
    pub step: StepMode,
    /// Per-simulation cycle budget (a blown budget is a typed skip).
    pub max_cycles: u64,
    /// Simulator threads per evaluation (results are identical at any
    /// value).
    pub threads: usize,
    /// Cap on *new* evaluations this invocation; pending points beyond
    /// the cap are reported as not-run and picked up on the next
    /// invocation. This is how tests interrupt a search mid-flight
    /// deterministically.
    pub limit: Option<usize>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            grid: DseGrid::default(),
            scale: Scale(1),
            jobs: 1,
            step: StepMode::Event,
            max_cycles: SimOptions::default().max_cycles,
            threads: 1,
            limit: None,
        }
    }
}

/// Final disposition of one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Compiled, simulated, and verified on every benchmark in the mix.
    Done(Objectives),
    /// The design cannot run this mix (typed skip, final): invalid
    /// parameters, compile failure after degradation, deadlock, cycle
    /// budget, or fault exhaustion.
    Infeasible {
        /// Exit-code class of the first problem encountered.
        code: i32,
        /// What made the point infeasible.
        message: String,
    },
    /// A real failure (verification mismatch, I/O error). Re-run on the
    /// next invocation.
    Failed {
        /// Exit-code class.
        code: i32,
        /// What failed.
        message: String,
    },
    /// Not attempted this invocation (`limit` exhausted).
    NotRun,
}

/// The cumulative result of a search invocation: every grid point's
/// disposition (including those restored from the journal) plus the
/// frontier over all `Done` points.
pub struct SearchReport {
    /// Per-point outcomes in enumeration order.
    pub points: Vec<(DsePoint, PointOutcome)>,
    /// Non-dominated `Done` points.
    pub frontier: ParetoFrontier,
    /// How many points were evaluated fresh this invocation (as opposed
    /// to restored from the journal).
    pub evaluated_now: usize,
}

impl SearchReport {
    /// Counts of (done, infeasible, failed, not-run) points.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for (_, o) in &self.points {
            match o {
                PointOutcome::Done(_) => c.0 += 1,
                PointOutcome::Infeasible { .. } => c.1 += 1,
                PointOutcome::Failed { .. } => c.2 += 1,
                PointOutcome::NotRun => c.3 += 1,
            }
        }
        c
    }

    /// The exit-code class of the invocation: the first failed point's
    /// class in enumeration order, `Ok` otherwise (infeasible points and
    /// not-run points are not failures).
    pub fn exit_code(&self) -> i32 {
        for (_, o) in &self.points {
            if let PointOutcome::Failed { code, .. } = o {
                return *code;
            }
        }
        ExitStatus::Ok.code()
    }

    /// The cumulative report as JSON. Deterministic: identical across
    /// worker counts, and identical whether the search ran cold or was
    /// resumed from a journal (objectives round-trip as exact bits).
    pub fn to_json(&self, benches: &[Bench], cfg: &SearchConfig) -> Json {
        let (done, infeasible, failed, not_run) = self.counts();
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|(p, o)| {
                let mut fields = vec![("point", Json::from(p.label()))];
                match o {
                    PointOutcome::Done(obj) => {
                        fields.push(("status", Json::from("done")));
                        fields.push(("perf", Json::from(obj.perf)));
                        fields.push(("area_mm2", Json::from(obj.area_mm2)));
                        fields.push(("perf_per_w", Json::from(obj.perf_per_w)));
                    }
                    PointOutcome::Infeasible { code, message } => {
                        fields.push(("status", Json::from("infeasible")));
                        fields.push(("code", Json::from(*code as u64)));
                        fields.push(("message", Json::from(message.clone())));
                    }
                    PointOutcome::Failed { code, message } => {
                        fields.push(("status", Json::from("failed")));
                        fields.push(("code", Json::from(*code as u64)));
                        fields.push(("message", Json::from(message.clone())));
                    }
                    PointOutcome::NotRun => {
                        fields.push(("status", Json::from("not-run")));
                    }
                }
                Json::obj(fields)
            })
            .collect();
        let frontier: Vec<Json> = self
            .frontier
            .entries()
            .iter()
            .map(|e| {
                Json::obj([
                    ("point", Json::from(e.id.clone())),
                    ("perf", Json::from(e.obj.perf)),
                    ("area_mm2", Json::from(e.obj.area_mm2)),
                    ("perf_per_w", Json::from(e.obj.perf_per_w)),
                ])
            })
            .collect();
        Json::obj([
            ("version", Json::from(1u64)),
            (
                "benches",
                Json::Arr(benches.iter().map(|b| Json::from(b.name.clone())).collect()),
            ),
            ("scale", Json::from(cfg.scale.0 as u64)),
            (
                "counts",
                Json::obj([
                    ("done", Json::from(done as u64)),
                    ("infeasible", Json::from(infeasible as u64)),
                    ("failed", Json::from(failed as u64)),
                    ("not_run", Json::from(not_run as u64)),
                ]),
            ),
            ("points", Json::Arr(points)),
            ("frontier", Json::Arr(frontier)),
        ])
    }
}

/// Stable identity of one (design point, workload mix) evaluation across
/// invocations. Everything that can change the measured objectives is
/// hashed in: the point itself, the benchmark programs, the scale, the
/// step mode, and the cycle budget.
fn point_key(point: &DsePoint, bench_sig: &str, cfg: &SearchConfig) -> String {
    let desc = format!(
        "dse|{}|{}|{}|{:?}|{}",
        point.label(),
        bench_sig,
        cfg.scale.0,
        cfg.step,
        cfg.max_cycles
    );
    format!("{:016x}", fnv1a_str(&desc))
}

/// Encodes measured objectives as exact f64 bit patterns for the
/// journal, so a resumed search reproduces them bit-for-bit.
fn encode_objectives(obj: &Objectives) -> Json {
    Json::obj([
        ("perf", Json::hex(obj.perf.to_bits())),
        ("area_mm2", Json::hex(obj.area_mm2.to_bits())),
        ("perf_per_w", Json::hex(obj.perf_per_w.to_bits())),
    ])
}

fn decode_objectives(data: &Json) -> Option<Objectives> {
    Some(Objectives {
        perf: f64::from_bits(hex_of(data, "perf").ok()?),
        area_mm2: f64::from_bits(hex_of(data, "area_mm2").ok()?),
        perf_per_w: f64::from_bits(hex_of(data, "perf_per_w").ok()?),
    })
}

/// Compiles, simulates, verifies, and prices one design point against
/// the whole mix. Perf and perf-per-W are geometric means across the
/// mix (each benchmark counts equally regardless of its absolute
/// runtime); area is the priced chip area of the point.
fn evaluate(
    point: &DsePoint,
    benches: &[Bench],
    cache: &CompileCache,
    cfg: &SearchConfig,
) -> PointOutcome {
    let params = match point.params() {
        Ok(p) => p,
        Err(e) => {
            return PointOutcome::Infeasible {
                code: ExitStatus::Compile.code(),
                message: format!("invalid parameters: {e}"),
            }
        }
    };
    let copts = CompileOptions::new();
    let mut opts = SimOptions {
        step: cfg.step,
        threads: cfg.threads,
        max_cycles: cfg.max_cycles,
        ..SimOptions::default()
    };
    opts.dram.channels = point.dram_channels;
    let mut ln_perf = 0.0f64;
    let mut ln_ppw = 0.0f64;
    for bench in benches {
        let compiled = match cache.compile_degraded(&bench.program, &params, &copts) {
            Ok(c) => c,
            Err(e) => {
                return PointOutcome::Infeasible {
                    code: ExitStatus::Compile.code(),
                    message: format!("{}: {e}", bench.name),
                }
            }
        };
        let (out, prog, _degraded) = &*compiled;
        let mut m = Machine::new(prog);
        bench.load(&mut m);
        let r = match simulate(prog, out, &mut m, &opts) {
            Ok(r) => r,
            Err(e) => {
                let code = ExitStatus::from(&e);
                let message = format!("{}: {e}", bench.name);
                // The design deadlocking or blowing its budget on this
                // mix is a property of the design point — a typed skip,
                // stable across re-runs. Anything else is a real error.
                return match code {
                    ExitStatus::Deadlock
                    | ExitStatus::CycleBudget
                    | ExitStatus::FaultExhaustion => PointOutcome::Infeasible {
                        code: code.code(),
                        message,
                    },
                    _ => PointOutcome::Failed {
                        code: code.code(),
                        message,
                    },
                };
            }
        };
        if let Err(e) = bench.verify(&m) {
            return PointOutcome::Failed {
                code: ExitStatus::Runtime.code(),
                message: format!("{}: verification: {e}", bench.name),
            };
        }
        let seconds = r.seconds(params.clock_ghz);
        let watts = PowerModel::new().estimate(&r, &out.config).total_w;
        ln_perf += (1.0 / seconds).ln();
        ln_ppw += (1.0 / (seconds * watts)).ln();
    }
    let n = benches.len() as f64;
    PointOutcome::Done(Objectives {
        perf: (ln_perf / n).exp(),
        area_mm2: AreaModel::new().chip(&params).total,
        perf_per_w: (ln_ppw / n).exp(),
    })
}

fn final_entry(key: &str, point: &DsePoint, outcome: &PointOutcome, attempts: u32) -> JournalEntry {
    let (status, code, message, data) = match outcome {
        PointOutcome::Done(obj) => (JobStatus::Done, 0, String::new(), encode_objectives(obj)),
        PointOutcome::Infeasible { code, message } => {
            (JobStatus::Infeasible, *code, message.clone(), Json::Null)
        }
        PointOutcome::Failed { code, message } => {
            (JobStatus::Failed, *code, message.clone(), Json::Null)
        }
        PointOutcome::NotRun => unreachable!("not-run points are never journaled"),
    };
    JournalEntry {
        key: key.to_string(),
        bench: point.label(),
        status,
        code,
        attempts,
        message,
        data,
    }
}

/// Runs (or resumes) the search: restores final outcomes from the
/// journal, evaluates up to `cfg.limit` pending points across
/// `cfg.jobs` workers, journals every state change, and folds all
/// `Done` points into the frontier.
///
/// # Errors
///
/// Returns a message for setup problems (empty grid axis, empty mix);
/// per-point problems are typed outcomes, not errors.
pub fn search(
    benches: &[Bench],
    cfg: &SearchConfig,
    journal: &mut Journal,
) -> Result<SearchReport, String> {
    cfg.grid.validate().map_err(|e| e.to_string())?;
    if benches.is_empty() {
        return Err("no benchmarks selected for the workload mix".into());
    }
    let points = cfg.grid.enumerate();
    let bench_sig: String = benches
        .iter()
        .map(|b| format!("{}:{:016x}", b.name, b.program.stable_hash()))
        .collect::<Vec<_>>()
        .join(",");
    let keys: Vec<String> = points
        .iter()
        .map(|p| point_key(p, &bench_sig, cfg))
        .collect();

    // Restore final outcomes; collect pending indices in enumeration
    // order. `done` and `infeasible` are final; `failed` retries;
    // `running` was interrupted.
    let mut outcomes: Vec<PointOutcome> = vec![PointOutcome::NotRun; points.len()];
    let mut restored: Vec<bool> = vec![false; points.len()];
    let mut prior_attempts: Vec<u32> = vec![0; points.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match journal.find(key) {
            Some(e) if e.status == JobStatus::Done => match decode_objectives(&e.data) {
                Some(obj) => {
                    outcomes[i] = PointOutcome::Done(obj);
                    restored[i] = true;
                }
                // A done entry without decodable objectives predates the
                // data payload or was hand-edited: re-evaluate.
                None => {
                    prior_attempts[i] = e.attempts;
                    pending.push(i);
                }
            },
            Some(e) if e.status == JobStatus::Infeasible => {
                outcomes[i] = PointOutcome::Infeasible {
                    code: e.code,
                    message: e.message.clone(),
                };
                restored[i] = true;
            }
            Some(e) => {
                prior_attempts[i] = e.attempts;
                pending.push(i);
            }
            None => pending.push(i),
        }
    }

    // `limit` bounds fresh work per invocation; the cap is applied to
    // the enumeration-ordered pending list, so which points run is
    // independent of the worker count.
    let budget = cfg.limit.unwrap_or(pending.len()).min(pending.len());
    let work: Vec<usize> = pending[..budget].to_vec();

    let cache = CompileCache::new();
    let journal_mx = Mutex::new(journal);
    let results: Mutex<Vec<Option<PointOutcome>>> = Mutex::new(vec![None; work.len()]);
    let next = AtomicUsize::new(0);
    let workers = cfg.jobs.max(1).min(work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let w = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = work.get(w) else { return };
                let point = &points[i];
                let attempts = prior_attempts[i] + 1;
                journal_mx.lock().unwrap().set(JournalEntry {
                    key: keys[i].clone(),
                    bench: point.label(),
                    status: JobStatus::Running,
                    code: 0,
                    attempts,
                    message: String::new(),
                    data: Json::Null,
                });
                let outcome = evaluate(point, benches, &cache, cfg);
                journal_mx
                    .lock()
                    .unwrap()
                    .set(final_entry(&keys[i], point, &outcome, attempts));
                results.lock().unwrap()[w] = Some(outcome);
            });
        }
    });
    let results = results.into_inner().unwrap();
    let mut evaluated_now = 0;
    for (w, &i) in work.iter().enumerate() {
        if let Some(o) = &results[w] {
            outcomes[i] = o.clone();
            evaluated_now += 1;
        }
    }

    // Frontier insertion in enumeration order. The frontier is
    // insertion-order independent, but a fixed order makes the stored
    // entry sequence (and thus the report bytes) deterministic too.
    let mut frontier = ParetoFrontier::new();
    for (i, o) in outcomes.iter().enumerate() {
        if let PointOutcome::Done(obj) = o {
            frontier.insert(FrontierPoint {
                id: points[i].label(),
                obj: *obj,
            });
        }
    }
    let _ = restored;
    Ok(SearchReport {
        points: points.into_iter().zip(outcomes).collect(),
        frontier,
        evaluated_now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GridMix;
    use crate::workloads::all;

    fn tiny_cfg() -> SearchConfig {
        SearchConfig {
            grid: DseGrid {
                lanes: vec![16, 8],
                stages: vec![6],
                mixes: vec![GridMix::Checkerboard],
                scratchpad_kb: vec![256],
                dram_channels: vec![4, 2],
            },
            scale: Scale(1),
            jobs: 2,
            ..SearchConfig::default()
        }
    }

    fn mix(names: &[&str]) -> Vec<Bench> {
        all(Scale(1))
            .into_iter()
            .filter(|b| names.contains(&b.name.as_str()))
            .collect()
    }

    #[test]
    fn objectives_round_trip_through_journal_bits() {
        let obj = Objectives {
            perf: 1_234.567_891_011,
            area_mm2: 102.3,
            perf_per_w: 0.000_123_456,
        };
        assert_eq!(decode_objectives(&encode_objectives(&obj)), Some(obj));
        assert_eq!(decode_objectives(&Json::Null), None);
    }

    #[test]
    fn point_keys_separate_mixes_and_budgets() {
        let cfg = tiny_cfg();
        let p = cfg.grid.enumerate()[0];
        let k1 = point_key(&p, "Dot:abc", &cfg);
        let k2 = point_key(&p, "GEMM:def", &cfg);
        let mut cfg2 = cfg.clone();
        cfg2.max_cycles = 1;
        let k3 = point_key(&p, "Dot:abc", &cfg2);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1, point_key(&p, "Dot:abc", &cfg));
    }

    #[test]
    fn search_emits_nonempty_frontier_and_journals_done_points() {
        let benches = mix(&["InnerProduct"]);
        let cfg = tiny_cfg();
        let mut journal = Journal::load(None).unwrap();
        let report = search(&benches, &cfg, &mut journal).unwrap();
        let (done, infeasible, failed, not_run) = report.counts();
        assert_eq!(done + infeasible + failed + not_run, 4);
        assert_eq!(failed, 0, "{:?}", report.points);
        assert_eq!(not_run, 0);
        assert!(!report.frontier.is_empty());
        assert_eq!(report.exit_code(), 0);
        assert_eq!(journal.entries().len(), done + infeasible);
    }

    #[test]
    fn limit_caps_fresh_work_and_resume_completes_identically() {
        let benches = mix(&["InnerProduct"]);
        let mut cfg = tiny_cfg();
        let mut journal = Journal::load(None).unwrap();

        // Full cold run for reference.
        let full = search(&benches, &cfg, &mut Journal::load(None).unwrap()).unwrap();

        // First invocation: only 2 of 4 points.
        cfg.limit = Some(2);
        let first = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(first.evaluated_now, 2);
        assert_eq!(first.counts().3, 2, "two points must be left not-run");

        // Second invocation: picks up the rest, restores the first two.
        cfg.limit = None;
        let second = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(second.evaluated_now, 2);
        assert_eq!(second.counts().3, 0);
        assert_eq!(
            second.to_json(&benches, &cfg).pretty(),
            full.to_json(&benches, &cfg).pretty(),
            "resumed report must be byte-identical to the cold run"
        );
    }

    #[test]
    fn infeasible_points_are_typed_not_failures() {
        let benches = mix(&["InnerProduct"]);
        let cfg = SearchConfig {
            grid: DseGrid {
                // 12 lanes is not a power of two: params-invalid.
                lanes: vec![12],
                stages: vec![6],
                mixes: vec![GridMix::Checkerboard],
                scratchpad_kb: vec![256],
                dram_channels: vec![4],
            },
            ..SearchConfig::default()
        };
        let mut journal = Journal::load(None).unwrap();
        let report = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(report.counts(), (0, 1, 0, 0));
        assert_eq!(report.exit_code(), 0, "typed skips are not failures");
        assert!(report.frontier.is_empty());
        assert_eq!(
            journal.entries()[0].status,
            JobStatus::Infeasible,
            "infeasible outcome must be journaled as final"
        );
    }
}
