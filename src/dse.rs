//! Resumable multi-objective design-space search (`plasticine-run dse
//! search`).
//!
//! The Figure 7 machinery in `plasticine-models` sweeps one PCU
//! parameter at a time against the area model alone. This module runs
//! the full pipeline per candidate: enumerate a [`DseGrid`] of
//! `PlasticineParams` points, compile every selected benchmark for each
//! point through a shared [`CompileCache`], simulate it, price the chip
//! with the area and power models, and fold the survivors into a Pareto
//! frontier over {perf, area, perf-per-W} with dominated configurations
//! pruned incrementally.
//!
//! ## Determinism
//!
//! Point evaluation is independent per point and the simulator is
//! byte-identical at any thread count, so the only ordering freedom is
//! which worker evaluates which point. Results are collected by
//! enumeration index and the frontier is rebuilt from those indexed
//! results, so the frontier — and the whole report — is identical
//! across worker counts.
//!
//! ## Resume
//!
//! Progress is journaled through the shared [`Journal`] (atomic
//! temp+rename writes). Each point+workload-mix gets a stable key;
//! `done` entries carry the measured objectives as exact f64 bit
//! patterns, so a resumed search rebuilds its frontier byte-identically
//! without re-simulating finished points. `infeasible` entries are
//! final (the design cannot change between invocations); `failed` and
//! interrupted `running` entries are re-run.
//!
//! ## Typed skips
//!
//! A point that cannot be built is not a failure of the search: invalid
//! parameters, a program that does not fit even after
//! `compile_degraded`'s parallelization reduction, a deadlocked
//! schedule, or a blown cycle budget all mark the point
//! [`JobStatus::Infeasible`] and the search continues. Only
//! verification mismatches and I/O errors are real failures, and the
//! search exits with the first failed point's exit-code class.

use crate::arch::{DseGrid, DsePoint};
use crate::compiler::{CompileCache, CompileOptions};
use crate::journal::{JobStatus, Journal, JournalEntry};
use crate::json::decode::hex_of;
use crate::json::{hash::fnv1a_str, Json};
use crate::models::dse::{FrontierPoint, Objectives, ParetoFrontier};
use crate::models::{AreaModel, PowerModel};
use crate::ppir::Machine;
use crate::sim::{simulate, ExitStatus, SimOptions, StepMode};
use crate::workloads::{Bench, Scale};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the search needs besides the workload mix.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The candidate grid (cross product of all axes).
    pub grid: DseGrid,
    /// Workload scale the mix is instantiated at.
    pub scale: Scale,
    /// Worker threads evaluating points concurrently.
    pub jobs: usize,
    /// Time-advance strategy for every simulation.
    pub step: StepMode,
    /// Per-simulation cycle budget (a blown budget is a typed skip).
    pub max_cycles: u64,
    /// Simulator threads per evaluation (results are identical at any
    /// value).
    pub threads: usize,
    /// Cap on *new* evaluations this invocation; pending points beyond
    /// the cap are reported as not-run and picked up on the next
    /// invocation. This is how tests interrupt a search mid-flight
    /// deterministically.
    pub limit: Option<usize>,
    /// Named workload mixes (`dense`, `sparse`, `ml`) scored in the same
    /// pass: every point is still compiled and simulated once per
    /// selected benchmark, but each mix re-weights those shared
    /// measurements into its own objectives and Pareto frontier, and the
    /// report adds the robust-across-mixes intersection. Empty (the
    /// default) scores only the union of the selected benchmarks,
    /// exactly as before.
    pub mixes: Vec<String>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            grid: DseGrid::default(),
            scale: Scale(1),
            jobs: 1,
            step: StepMode::Event,
            max_cycles: SimOptions::default().max_cycles,
            threads: 1,
            limit: None,
            mixes: Vec::new(),
        }
    }
}

/// The benchmarks a named workload mix covers, following the paper's
/// application classes: `dense` is the tiled linear-algebra and
/// streaming kernels, `sparse` the pointer-chasing graph/SpMV kernels,
/// `ml` the iterative training and inference workloads.
pub fn mix_members(name: &str) -> Option<&'static [&'static str]> {
    match name {
        "dense" => Some(&[
            "InnerProduct",
            "OuterProduct",
            "BlackScholes",
            "TPCHQ6",
            "GEMM",
        ]),
        "sparse" => Some(&["SMDV", "PageRank", "BFS"]),
        "ml" => Some(&["GDA", "LogReg", "SGD", "Kmeans", "CNN"]),
        _ => None,
    }
}

/// Resolves mix names to indices into the selected benchmark list. Every
/// mix member must be present: a mix scored over a partial member set
/// would silently mean something different between invocations.
fn resolve_mixes(names: &[String], benches: &[Bench]) -> Result<Vec<(String, Vec<usize>)>, String> {
    names
        .iter()
        .map(|name| {
            let members = mix_members(name).ok_or_else(|| {
                format!("unknown workload mix `{name}` (known mixes: dense, sparse, ml)")
            })?;
            let idx = members
                .iter()
                .map(|m| {
                    benches.iter().position(|b| b.name == *m).ok_or_else(|| {
                        format!(
                            "mix `{name}` includes {m}, which is not in the selected \
                                 benchmarks (select `all` when using --mixes)"
                        )
                    })
                })
                .collect::<Result<Vec<usize>, String>>()?;
            Ok((name.clone(), idx))
        })
        .collect()
}

/// Measured outcome of a feasible point: the objectives over the whole
/// selected benchmark set, plus each configured named mix's objectives
/// over the shared per-benchmark measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct DonePoint {
    /// Objectives over every selected benchmark (the union mix).
    pub obj: Objectives,
    /// Per-named-mix objectives, in [`SearchConfig::mixes`] order (empty
    /// when no named mixes are configured).
    pub mixes: Vec<(String, Objectives)>,
}

/// Final disposition of one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// Compiled, simulated, and verified on every benchmark in the mix.
    Done(DonePoint),
    /// The design cannot run this mix (typed skip, final): invalid
    /// parameters, compile failure after degradation, deadlock, cycle
    /// budget, or fault exhaustion.
    Infeasible {
        /// Exit-code class of the first problem encountered.
        code: i32,
        /// What made the point infeasible.
        message: String,
    },
    /// A real failure (verification mismatch, I/O error). Re-run on the
    /// next invocation.
    Failed {
        /// Exit-code class.
        code: i32,
        /// What failed.
        message: String,
    },
    /// Not attempted this invocation (`limit` exhausted).
    NotRun,
}

/// The cumulative result of a search invocation: every grid point's
/// disposition (including those restored from the journal) plus the
/// frontier over all `Done` points.
#[derive(Debug)]
pub struct SearchReport {
    /// Per-point outcomes in enumeration order.
    pub points: Vec<(DsePoint, PointOutcome)>,
    /// Non-dominated `Done` points (over the union objectives).
    pub frontier: ParetoFrontier,
    /// One frontier per configured named mix, in [`SearchConfig::mixes`]
    /// order.
    pub mix_frontiers: Vec<(String, ParetoFrontier)>,
    /// Labels of the points on *every* named mix's frontier — the
    /// designs that are robust across workload mixes — in enumeration
    /// order. Empty when no named mixes are configured.
    pub robust: Vec<String>,
    /// How many points were evaluated fresh this invocation (as opposed
    /// to restored from the journal).
    pub evaluated_now: usize,
}

impl SearchReport {
    /// Counts of (done, infeasible, failed, not-run) points.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for (_, o) in &self.points {
            match o {
                PointOutcome::Done(_) => c.0 += 1,
                PointOutcome::Infeasible { .. } => c.1 += 1,
                PointOutcome::Failed { .. } => c.2 += 1,
                PointOutcome::NotRun => c.3 += 1,
            }
        }
        c
    }

    /// The exit-code class of the invocation: the first failed point's
    /// class in enumeration order, `Ok` otherwise (infeasible points and
    /// not-run points are not failures).
    pub fn exit_code(&self) -> i32 {
        for (_, o) in &self.points {
            if let PointOutcome::Failed { code, .. } = o {
                return *code;
            }
        }
        ExitStatus::Ok.code()
    }

    /// The cumulative report as JSON. Deterministic: identical across
    /// worker counts, and identical whether the search ran cold or was
    /// resumed from a journal (objectives round-trip as exact bits).
    pub fn to_json(&self, benches: &[Bench], cfg: &SearchConfig) -> Json {
        let (done, infeasible, failed, not_run) = self.counts();
        let points: Vec<Json> = self
            .points
            .iter()
            .map(|(p, o)| {
                let mut fields = vec![("point", Json::from(p.label()))];
                match o {
                    PointOutcome::Done(d) => {
                        fields.push(("status", Json::from("done")));
                        fields.push(("perf", Json::from(d.obj.perf)));
                        fields.push(("area_mm2", Json::from(d.obj.area_mm2)));
                        fields.push(("perf_per_w", Json::from(d.obj.perf_per_w)));
                        if !d.mixes.is_empty() {
                            fields.push((
                                "mixes",
                                Json::Obj(
                                    d.mixes
                                        .iter()
                                        .map(|(n, obj)| {
                                            (
                                                n.clone(),
                                                Json::obj([
                                                    ("perf", Json::from(obj.perf)),
                                                    ("area_mm2", Json::from(obj.area_mm2)),
                                                    ("perf_per_w", Json::from(obj.perf_per_w)),
                                                ]),
                                            )
                                        })
                                        .collect(),
                                ),
                            ));
                        }
                    }
                    PointOutcome::Infeasible { code, message } => {
                        fields.push(("status", Json::from("infeasible")));
                        fields.push(("code", Json::from(*code as u64)));
                        fields.push(("message", Json::from(message.clone())));
                    }
                    PointOutcome::Failed { code, message } => {
                        fields.push(("status", Json::from("failed")));
                        fields.push(("code", Json::from(*code as u64)));
                        fields.push(("message", Json::from(message.clone())));
                    }
                    PointOutcome::NotRun => {
                        fields.push(("status", Json::from("not-run")));
                    }
                }
                Json::obj(fields)
            })
            .collect();
        let frontier_json = |f: &ParetoFrontier| -> Json {
            Json::Arr(
                f.entries()
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("point", Json::from(e.id.clone())),
                            ("perf", Json::from(e.obj.perf)),
                            ("area_mm2", Json::from(e.obj.area_mm2)),
                            ("perf_per_w", Json::from(e.obj.perf_per_w)),
                        ])
                    })
                    .collect(),
            )
        };
        let frontier = frontier_json(&self.frontier);
        let mut fields = vec![
            ("version", Json::from(1u64)),
            (
                "benches",
                Json::Arr(benches.iter().map(|b| Json::from(b.name.clone())).collect()),
            ),
            ("scale", Json::from(cfg.scale.0 as u64)),
            (
                "counts",
                Json::obj([
                    ("done", Json::from(done as u64)),
                    ("infeasible", Json::from(infeasible as u64)),
                    ("failed", Json::from(failed as u64)),
                    ("not_run", Json::from(not_run as u64)),
                ]),
            ),
            ("points", Json::Arr(points)),
            ("frontier", frontier),
        ];
        if !self.mix_frontiers.is_empty() {
            fields.push((
                "mixes",
                Json::Arr(
                    self.mix_frontiers
                        .iter()
                        .map(|(name, f)| {
                            Json::obj([
                                ("name", Json::from(name.clone())),
                                ("frontier", frontier_json(f)),
                            ])
                        })
                        .collect(),
                ),
            ));
            fields.push((
                "robust",
                Json::Arr(self.robust.iter().map(|l| Json::from(l.clone())).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Stable identity of one (design point, workload mix) evaluation across
/// invocations. Everything that can change the measured objectives is
/// hashed in: the point itself, the benchmark programs, the scale, the
/// step mode, and the cycle budget.
fn point_key(point: &DsePoint, bench_sig: &str, cfg: &SearchConfig) -> String {
    let mut desc = format!(
        "dse|{}|{}|{}|{:?}|{}",
        point.label(),
        bench_sig,
        cfg.scale.0,
        cfg.step,
        cfg.max_cycles
    );
    // Named mixes change what the journal payload must hold, so they are
    // part of the evaluation's identity. Mix-less searches keep their
    // historical keys.
    if !cfg.mixes.is_empty() {
        desc.push_str("|mixes=");
        desc.push_str(&cfg.mixes.join(","));
    }
    format!("{:016x}", fnv1a_str(&desc))
}

/// Encodes measured objectives as exact f64 bit patterns for the
/// journal, so a resumed search reproduces them bit-for-bit. Per-mix
/// objectives ride along under a `mixes` sub-object.
fn encode_objectives(d: &DonePoint) -> Json {
    let one = |obj: &Objectives| {
        vec![
            ("perf".to_string(), Json::hex(obj.perf.to_bits())),
            ("area_mm2".to_string(), Json::hex(obj.area_mm2.to_bits())),
            (
                "perf_per_w".to_string(),
                Json::hex(obj.perf_per_w.to_bits()),
            ),
        ]
    };
    let mut fields = one(&d.obj);
    if !d.mixes.is_empty() {
        fields.push((
            "mixes".to_string(),
            Json::Obj(
                d.mixes
                    .iter()
                    .map(|(n, obj)| (n.clone(), Json::Obj(one(obj))))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

fn decode_one(data: &Json) -> Option<Objectives> {
    Some(Objectives {
        perf: f64::from_bits(hex_of(data, "perf").ok()?),
        area_mm2: f64::from_bits(hex_of(data, "area_mm2").ok()?),
        perf_per_w: f64::from_bits(hex_of(data, "perf_per_w").ok()?),
    })
}

/// Decodes a `done` payload against the configured mix list; a payload
/// missing any required mix (e.g. written before that mix existed) is
/// rejected so the point is re-evaluated.
fn decode_objectives(data: &Json, mixes: &[String]) -> Option<DonePoint> {
    let obj = decode_one(data)?;
    let per_mix = mixes
        .iter()
        .map(|name| {
            let sub = data.get("mixes")?.get(name)?;
            Some((name.clone(), decode_one(sub)?))
        })
        .collect::<Option<Vec<_>>>()?;
    Some(DonePoint {
        obj,
        mixes: per_mix,
    })
}

/// Compiles, simulates, verifies, and prices one design point against
/// the whole mix. Perf and perf-per-W are geometric means across the
/// mix (each benchmark counts equally regardless of its absolute
/// runtime); area is the priced chip area of the point. Named mixes
/// reuse the same per-benchmark measurements — one compile + simulate
/// per benchmark no matter how many mixes score it.
fn evaluate(
    point: &DsePoint,
    benches: &[Bench],
    mix_sets: &[(String, Vec<usize>)],
    cache: &CompileCache,
    cfg: &SearchConfig,
) -> PointOutcome {
    let params = match point.params() {
        Ok(p) => p,
        Err(e) => {
            return PointOutcome::Infeasible {
                code: ExitStatus::Compile.code(),
                message: format!("invalid parameters: {e}"),
            }
        }
    };
    let copts = CompileOptions::new();
    let mut opts = SimOptions {
        step: cfg.step,
        threads: cfg.threads,
        max_cycles: cfg.max_cycles,
        ..SimOptions::default()
    };
    opts.dram.channels = point.dram_channels;
    // Per-benchmark (1/seconds, 1/(seconds*watts)) log-measurements, the
    // shared raw material every mix's geomean is folded from.
    let mut ln_measured: Vec<(f64, f64)> = Vec::with_capacity(benches.len());
    for bench in benches {
        let compiled = match cache.compile_degraded(&bench.program, &params, &copts) {
            Ok(c) => c,
            Err(e) => {
                return PointOutcome::Infeasible {
                    code: ExitStatus::Compile.code(),
                    message: format!("{}: {e}", bench.name),
                }
            }
        };
        let (out, prog, _degraded) = &*compiled;
        let mut m = Machine::new(prog);
        bench.load(&mut m);
        let r = match simulate(prog, out, &mut m, &opts) {
            Ok(r) => r,
            Err(e) => {
                let code = ExitStatus::from(&e);
                let message = format!("{}: {e}", bench.name);
                // The design deadlocking or blowing its budget on this
                // mix is a property of the design point — a typed skip,
                // stable across re-runs. Anything else is a real error.
                return match code {
                    ExitStatus::Deadlock
                    | ExitStatus::CycleBudget
                    | ExitStatus::FaultExhaustion => PointOutcome::Infeasible {
                        code: code.code(),
                        message,
                    },
                    _ => PointOutcome::Failed {
                        code: code.code(),
                        message,
                    },
                };
            }
        };
        if let Err(e) = bench.verify(&m) {
            return PointOutcome::Failed {
                code: ExitStatus::Runtime.code(),
                message: format!("{}: verification: {e}", bench.name),
            };
        }
        let seconds = r.seconds(params.clock_ghz);
        let watts = PowerModel::new().estimate(&r, &out.config).total_w;
        ln_measured.push(((1.0 / seconds).ln(), (1.0 / (seconds * watts)).ln()));
    }
    let area = AreaModel::new().chip(&params).total;
    let geomean = |idx: &mut dyn Iterator<Item = usize>| -> Objectives {
        let (mut ln_perf, mut ln_ppw, mut n) = (0.0f64, 0.0f64, 0usize);
        for i in idx {
            ln_perf += ln_measured[i].0;
            ln_ppw += ln_measured[i].1;
            n += 1;
        }
        let n = n as f64;
        Objectives {
            perf: (ln_perf / n).exp(),
            area_mm2: area,
            perf_per_w: (ln_ppw / n).exp(),
        }
    };
    PointOutcome::Done(DonePoint {
        obj: geomean(&mut (0..benches.len())),
        mixes: mix_sets
            .iter()
            .map(|(name, idx)| (name.clone(), geomean(&mut idx.iter().copied())))
            .collect(),
    })
}

fn final_entry(key: &str, point: &DsePoint, outcome: &PointOutcome, attempts: u32) -> JournalEntry {
    let (status, code, message, data) = match outcome {
        PointOutcome::Done(d) => (JobStatus::Done, 0, String::new(), encode_objectives(d)),
        PointOutcome::Infeasible { code, message } => {
            (JobStatus::Infeasible, *code, message.clone(), Json::Null)
        }
        PointOutcome::Failed { code, message } => {
            (JobStatus::Failed, *code, message.clone(), Json::Null)
        }
        PointOutcome::NotRun => unreachable!("not-run points are never journaled"),
    };
    JournalEntry {
        key: key.to_string(),
        bench: point.label(),
        status,
        code,
        attempts,
        message,
        data,
    }
}

/// Runs (or resumes) the search: restores final outcomes from the
/// journal, evaluates up to `cfg.limit` pending points across
/// `cfg.jobs` workers, journals every state change, and folds all
/// `Done` points into the frontier.
///
/// # Errors
///
/// Returns a message for setup problems (empty grid axis, empty mix);
/// per-point problems are typed outcomes, not errors.
pub fn search(
    benches: &[Bench],
    cfg: &SearchConfig,
    journal: &mut Journal,
) -> Result<SearchReport, String> {
    cfg.grid.validate().map_err(|e| e.to_string())?;
    if benches.is_empty() {
        return Err("no benchmarks selected for the workload mix".into());
    }
    let mix_sets = resolve_mixes(&cfg.mixes, benches)?;
    let points = cfg.grid.enumerate();
    let bench_sig: String = benches
        .iter()
        .map(|b| format!("{}:{:016x}", b.name, b.program.stable_hash()))
        .collect::<Vec<_>>()
        .join(",");
    let keys: Vec<String> = points
        .iter()
        .map(|p| point_key(p, &bench_sig, cfg))
        .collect();

    // Restore final outcomes; collect pending indices in enumeration
    // order. `done` and `infeasible` are final; `failed` retries;
    // `running` was interrupted.
    let mut outcomes: Vec<PointOutcome> = vec![PointOutcome::NotRun; points.len()];
    let mut restored: Vec<bool> = vec![false; points.len()];
    let mut prior_attempts: Vec<u32> = vec![0; points.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match journal.find(key) {
            Some(e) if e.status == JobStatus::Done => {
                match decode_objectives(&e.data, &cfg.mixes) {
                    Some(d) => {
                        outcomes[i] = PointOutcome::Done(d);
                        restored[i] = true;
                    }
                    // A done entry without decodable objectives predates the
                    // data payload or was hand-edited: re-evaluate.
                    None => {
                        prior_attempts[i] = e.attempts;
                        pending.push(i);
                    }
                }
            }
            Some(e) if e.status == JobStatus::Infeasible => {
                outcomes[i] = PointOutcome::Infeasible {
                    code: e.code,
                    message: e.message.clone(),
                };
                restored[i] = true;
            }
            Some(e) => {
                prior_attempts[i] = e.attempts;
                pending.push(i);
            }
            None => pending.push(i),
        }
    }

    // `limit` bounds fresh work per invocation; the cap is applied to
    // the enumeration-ordered pending list, so which points run is
    // independent of the worker count.
    let budget = cfg.limit.unwrap_or(pending.len()).min(pending.len());
    let work: Vec<usize> = pending[..budget].to_vec();

    let cache = CompileCache::new();
    let journal_mx = Mutex::new(journal);
    let results: Mutex<Vec<Option<PointOutcome>>> = Mutex::new(vec![None; work.len()]);
    let next = AtomicUsize::new(0);
    let workers = cfg.jobs.max(1).min(work.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let w = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = work.get(w) else { return };
                let point = &points[i];
                let attempts = prior_attempts[i] + 1;
                journal_mx.lock().unwrap().set(JournalEntry {
                    key: keys[i].clone(),
                    bench: point.label(),
                    status: JobStatus::Running,
                    code: 0,
                    attempts,
                    message: String::new(),
                    data: Json::Null,
                });
                let outcome = evaluate(point, benches, &mix_sets, &cache, cfg);
                journal_mx
                    .lock()
                    .unwrap()
                    .set(final_entry(&keys[i], point, &outcome, attempts));
                results.lock().unwrap()[w] = Some(outcome);
            });
        }
    });
    let results = results.into_inner().unwrap();
    let mut evaluated_now = 0;
    for (w, &i) in work.iter().enumerate() {
        if let Some(o) = &results[w] {
            outcomes[i] = o.clone();
            evaluated_now += 1;
        }
    }

    // Frontier insertion in enumeration order. The frontier is
    // insertion-order independent, but a fixed order makes the stored
    // entry sequence (and thus the report bytes) deterministic too.
    let mut frontier = ParetoFrontier::new();
    let mut mix_frontiers: Vec<(String, ParetoFrontier)> = cfg
        .mixes
        .iter()
        .map(|n| (n.clone(), ParetoFrontier::new()))
        .collect();
    for (i, o) in outcomes.iter().enumerate() {
        if let PointOutcome::Done(d) = o {
            frontier.insert(FrontierPoint {
                id: points[i].label(),
                obj: d.obj,
            });
            for (name, obj) in &d.mixes {
                let (_, f) = mix_frontiers
                    .iter_mut()
                    .find(|(n, _)| n == name)
                    .expect("mix objectives always come from cfg.mixes");
                f.insert(FrontierPoint {
                    id: points[i].label(),
                    obj: *obj,
                });
            }
        }
    }
    // The robust set: points every mix keeps on its frontier. Enumeration
    // order keeps the list deterministic.
    let robust: Vec<String> = if mix_frontiers.is_empty() {
        Vec::new()
    } else {
        points
            .iter()
            .map(|p| p.label())
            .filter(|l| {
                mix_frontiers
                    .iter()
                    .all(|(_, f)| f.entries().iter().any(|e| &e.id == l))
            })
            .collect()
    };
    let _ = restored;
    Ok(SearchReport {
        points: points.into_iter().zip(outcomes).collect(),
        frontier,
        mix_frontiers,
        robust,
        evaluated_now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GridMix;
    use crate::workloads::all;

    fn tiny_cfg() -> SearchConfig {
        SearchConfig {
            grid: DseGrid {
                lanes: vec![16, 8],
                stages: vec![6],
                mixes: vec![GridMix::Checkerboard],
                scratchpad_kb: vec![256],
                dram_channels: vec![4, 2],
            },
            scale: Scale(1),
            jobs: 2,
            ..SearchConfig::default()
        }
    }

    fn mix(names: &[&str]) -> Vec<Bench> {
        all(Scale(1))
            .into_iter()
            .filter(|b| names.contains(&b.name.as_str()))
            .collect()
    }

    #[test]
    fn objectives_round_trip_through_journal_bits() {
        let obj = Objectives {
            perf: 1_234.567_891_011,
            area_mm2: 102.3,
            perf_per_w: 0.000_123_456,
        };
        let plain = DonePoint {
            obj,
            mixes: Vec::new(),
        };
        assert_eq!(
            decode_objectives(&encode_objectives(&plain), &[]),
            Some(plain.clone())
        );
        assert_eq!(decode_objectives(&Json::Null, &[]), None);

        // Per-mix objectives ride along and round-trip exactly.
        let with_mixes = DonePoint {
            obj,
            mixes: vec![(
                "dense".to_string(),
                Objectives {
                    perf: 2.0,
                    area_mm2: 102.3,
                    perf_per_w: 0.5,
                },
            )],
        };
        let data = encode_objectives(&with_mixes);
        assert_eq!(
            decode_objectives(&data, &["dense".to_string()]),
            Some(with_mixes)
        );
        // A payload missing a required mix is rejected → re-evaluated.
        assert_eq!(
            decode_objectives(&encode_objectives(&plain), &["dense".to_string()]),
            None
        );
        // Extra mixes in the payload do not disturb a mix-less decode.
        assert_eq!(decode_objectives(&data, &[]), Some(plain));
    }

    #[test]
    fn point_keys_separate_mixes_and_budgets() {
        let cfg = tiny_cfg();
        let p = cfg.grid.enumerate()[0];
        let k1 = point_key(&p, "Dot:abc", &cfg);
        let k2 = point_key(&p, "GEMM:def", &cfg);
        let mut cfg2 = cfg.clone();
        cfg2.max_cycles = 1;
        let k3 = point_key(&p, "Dot:abc", &cfg2);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(k1, point_key(&p, "Dot:abc", &cfg));
    }

    #[test]
    fn search_emits_nonempty_frontier_and_journals_done_points() {
        let benches = mix(&["InnerProduct"]);
        let cfg = tiny_cfg();
        let mut journal = Journal::load(None).unwrap();
        let report = search(&benches, &cfg, &mut journal).unwrap();
        let (done, infeasible, failed, not_run) = report.counts();
        assert_eq!(done + infeasible + failed + not_run, 4);
        assert_eq!(failed, 0, "{:?}", report.points);
        assert_eq!(not_run, 0);
        assert!(!report.frontier.is_empty());
        assert_eq!(report.exit_code(), 0);
        assert_eq!(journal.entries().len(), done + infeasible);
    }

    #[test]
    fn limit_caps_fresh_work_and_resume_completes_identically() {
        let benches = mix(&["InnerProduct"]);
        let mut cfg = tiny_cfg();
        let mut journal = Journal::load(None).unwrap();

        // Full cold run for reference.
        let full = search(&benches, &cfg, &mut Journal::load(None).unwrap()).unwrap();

        // First invocation: only 2 of 4 points.
        cfg.limit = Some(2);
        let first = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(first.evaluated_now, 2);
        assert_eq!(first.counts().3, 2, "two points must be left not-run");

        // Second invocation: picks up the rest, restores the first two.
        cfg.limit = None;
        let second = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(second.evaluated_now, 2);
        assert_eq!(second.counts().3, 0);
        assert_eq!(
            second.to_json(&benches, &cfg).pretty(),
            full.to_json(&benches, &cfg).pretty(),
            "resumed report must be byte-identical to the cold run"
        );
    }

    #[test]
    fn named_mixes_share_one_pass_and_resume_byte_identically() {
        let benches = all(Scale(1));
        let cfg = SearchConfig {
            grid: DseGrid {
                lanes: vec![16],
                stages: vec![6],
                mixes: vec![GridMix::Checkerboard],
                scratchpad_kb: vec![256],
                dram_channels: vec![4],
            },
            mixes: vec!["dense".into(), "sparse".into(), "ml".into()],
            ..SearchConfig::default()
        };
        let mut journal = Journal::load(None).unwrap();
        let report = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(report.counts().0, 1, "{:?}", report.points);
        assert_eq!(report.mix_frontiers.len(), 3);
        for (name, f) in &report.mix_frontiers {
            assert_eq!(f.len(), 1, "mix `{name}` must keep the only point");
        }
        assert_eq!(report.robust.len(), 1, "the only point is robust");
        let PointOutcome::Done(d) = &report.points[0].1 else {
            panic!("point must be done");
        };
        assert_eq!(d.mixes.len(), 3);
        // Each mix geomeans a different benchmark subset, so the
        // objectives differ from the union and from each other.
        assert!(d.mixes.iter().any(|(_, o)| o.perf != d.obj.perf));
        // The journal payload carries every mix.
        let entry = journal.entries()[0].clone();
        assert_eq!(entry.status, JobStatus::Done);
        assert!(entry.data.get("mixes").is_some());
        // Resuming restores the per-mix objectives without re-evaluating.
        let resumed = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(resumed.evaluated_now, 0);
        assert_eq!(
            resumed.to_json(&benches, &cfg).pretty(),
            report.to_json(&benches, &cfg).pretty()
        );
    }

    #[test]
    fn mix_setup_errors_are_reported() {
        let benches = all(Scale(1));
        let mut cfg = SearchConfig {
            mixes: vec!["warehouse".into()],
            ..tiny_cfg()
        };
        let err = search(&benches, &cfg, &mut Journal::load(None).unwrap()).unwrap_err();
        assert!(err.contains("unknown workload mix"), "{err}");

        cfg.mixes = vec!["sparse".into()];
        let narrow = mix(&["InnerProduct"]);
        let err = search(&narrow, &cfg, &mut Journal::load(None).unwrap()).unwrap_err();
        assert!(err.contains("not in the selected"), "{err}");
    }

    #[test]
    fn infeasible_points_are_typed_not_failures() {
        let benches = mix(&["InnerProduct"]);
        let cfg = SearchConfig {
            grid: DseGrid {
                // 12 lanes is not a power of two: params-invalid.
                lanes: vec![12],
                stages: vec![6],
                mixes: vec![GridMix::Checkerboard],
                scratchpad_kb: vec![256],
                dram_channels: vec![4],
            },
            ..SearchConfig::default()
        };
        let mut journal = Journal::load(None).unwrap();
        let report = search(&benches, &cfg, &mut journal).unwrap();
        assert_eq!(report.counts(), (0, 1, 0, 0));
        assert_eq!(report.exit_code(), 0, "typed skips are not failures");
        assert!(report.frontier.is_empty());
        assert_eq!(
            journal.entries()[0].status,
            JobStatus::Infeasible,
            "infeasible outcome must be journaled as final"
        );
    }
}
