//! Crash-safe progress journal shared by `plasticine-run batch` and
//! `plasticine-run dse search`.
//!
//! One JSON file, rewritten after every state change via a temp+rename
//! pair so a kill at any point leaves a consistent snapshot: readers see
//! the old complete journal or the new one, never a torn file. Entries
//! are keyed by a stable hash of the work item's identity; jobs marked
//! [`JobStatus::Done`] are skipped by a re-invoked run, jobs left
//! [`JobStatus::Running`] were interrupted and are re-run.
//!
//! The `dse` driver extends entries with a `data` object carrying the
//! measured objectives (as exact f64 bit patterns) so a resumed search
//! can rebuild its Pareto frontier byte-identically without
//! re-simulating finished points. `batch` journals never set `data`,
//! and the field is omitted when empty, so the on-disk format of
//! existing batch journals is unchanged.

use crate::json::decode::{arr_of, str_of, u64_of};
use crate::json::Json;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Lifecycle of one journaled work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Claimed by a worker; still this state in the journal after a crash
    /// or kill, which is how a re-invoked run finds interrupted jobs.
    Running,
    /// Finished successfully; skipped on re-invocation.
    Done,
    /// Finished unsuccessfully (verification or I/O failure, exhausted
    /// retries, …).
    Failed,
    /// A `dse` design point that cannot be built or mapped (invalid
    /// parameters, compile failure even after degradation). A typed,
    /// final outcome — not retried, and not counted as a failure.
    Infeasible,
}

impl JobStatus {
    /// The stable on-disk spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Infeasible => "infeasible",
        }
    }

    /// Parses the on-disk spelling.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown status.
    pub fn parse(s: &str) -> Result<JobStatus, String> {
        match s {
            "running" => Ok(JobStatus::Running),
            "done" => Ok(JobStatus::Done),
            "failed" => Ok(JobStatus::Failed),
            "infeasible" => Ok(JobStatus::Infeasible),
            _ => Err(format!("unknown job status `{s}`")),
        }
    }
}

/// One journaled work item. `bench` holds the human-readable work label:
/// the benchmark name for `batch`, the design-point label for `dse`.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Stable identity hash of the work item across invocations.
    pub key: String,
    /// Human-readable label (bench name or design-point label).
    pub bench: String,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Exit-code class of the outcome (0 for success).
    pub code: i32,
    /// How many times the item has been attempted.
    pub attempts: u32,
    /// One-line outcome description.
    pub message: String,
    /// Extra structured payload (`Json::Null` when absent; omitted from
    /// the file so batch journals keep their original shape).
    pub data: Json,
}

/// Is the process with this pid alive? `/proc/<pid>` is the
/// dependency-free probe; our own pid is alive by definition (covers the
/// same process opening the same journal twice — still two writers).
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    pid == std::process::id() || Path::new(&format!("/proc/{pid}")).exists()
}

/// Without `/proc` there is no dependency-free liveness probe. Err on
/// the side of refusing — the error message names the lockfile so a
/// human can remove it after checking the pid themselves.
#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    true
}

/// Exclusive writer lock on a file-backed journal: `<journal>.lock`
/// holding the owner's pid, released on drop.
///
/// Every [`Journal::set`] rewrites the whole file, so two concurrent
/// writers silently lose each other's entries — the second writer must
/// be refused up front, not merged after the fact. Same liveness logic
/// as the serve daemon's socket reclaim: a lockfile whose pid is dead
/// (crashed or killed writer) is stale and reclaimed; a live pid is a
/// hard error.
#[derive(Debug)]
struct JournalLock {
    path: PathBuf,
}

impl JournalLock {
    fn acquire(journal: &Path) -> Result<JournalLock, String> {
        let path = PathBuf::from(format!("{}.lock", journal.display()));
        // Two passes: the first may reclaim a stale lockfile; losing the
        // re-create race on the second means a genuinely live competitor.
        for reclaimed in [false, true] {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(JournalLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if let Some(pid) = holder.filter(|&p| pid_alive(p)) {
                        return Err(format!(
                            "journal {} is locked by a live writer (pid {pid}); a second \
                             concurrent writer would corrupt it — wait for that run, or \
                             remove {} if the process is really gone",
                            journal.display(),
                            path.display()
                        ));
                    }
                    if reclaimed {
                        return Err(format!(
                            "journal {}: lost the lockfile race to another writer",
                            journal.display()
                        ));
                    }
                    // Dead pid or unreadable contents: a stale lock from a
                    // crashed writer. Reclaim and retry once.
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(format!("journal lock {}: {e}", path.display())),
            }
        }
        unreachable!("second pass always returns");
    }
}

impl Drop for JournalLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The progress journal. Constructed with [`Journal::load`]; every
/// [`Journal::set`] rewrites the backing file (when one is configured).
/// File-backed journals hold an exclusive writer lock for their whole
/// lifetime; loading the same path from a second live process (or twice
/// from one) is an error.
#[derive(Debug)]
pub struct Journal {
    path: Option<PathBuf>,
    entries: Vec<JournalEntry>,
    _lock: Option<JournalLock>,
}

impl Journal {
    /// Loads the journal at `path`, or an in-memory journal when `path`
    /// is `None`, or an empty journal when the file does not exist yet.
    ///
    /// # Errors
    ///
    /// Returns a message naming the file and the parse or I/O problem.
    pub fn load(path: Option<&str>) -> Result<Journal, String> {
        let Some(path) = path else {
            return Ok(Journal {
                path: None,
                entries: Vec::new(),
                _lock: None,
            });
        };
        let pb = PathBuf::from(path);
        // Lock before reading: the snapshot below is only trustworthy if
        // no live writer can rewrite the file under us. The lock is
        // dropped (and its file removed) on every error path out of this
        // function, so a failed load never wedges the journal.
        let lock = JournalLock::acquire(&pb)?;
        if !pb.exists() {
            return Ok(Journal {
                path: Some(pb),
                entries: Vec::new(),
                _lock: Some(lock),
            });
        }
        let text =
            std::fs::read_to_string(&pb).map_err(|e| format!("reading journal {path}: {e}"))?;
        let j = Json::parse(&text).map_err(|e| format!("journal {path}: {e}"))?;
        let mut entries = Vec::new();
        let bad = |e: String| format!("journal {path}: {e}");
        for job in arr_of(&j, "jobs").map_err(bad)? {
            entries.push(JournalEntry {
                key: str_of(job, "key").map_err(bad)?.to_string(),
                bench: str_of(job, "bench").map_err(bad)?.to_string(),
                status: JobStatus::parse(str_of(job, "status").map_err(bad)?).map_err(bad)?,
                code: u64_of(job, "code").map_err(bad)? as i32,
                attempts: u64_of(job, "attempts").map_err(bad)? as u32,
                message: str_of(job, "message").map_err(bad)?.to_string(),
                data: job.get("data").cloned().unwrap_or(Json::Null),
            });
        }
        Ok(Journal {
            path: Some(pb),
            entries,
            _lock: Some(lock),
        })
    }

    /// Looks up the entry for `key`, if any.
    pub fn find(&self, key: &str) -> Option<&JournalEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Inserts or replaces the entry with `entry.key`, then flushes.
    pub fn set(&mut self, entry: JournalEntry) {
        match self.entries.iter_mut().find(|e| e.key == entry.key) {
            Some(e) => *e = entry,
            None => self.entries.push(entry),
        }
        self.flush();
    }

    /// Rewrites the backing file (no-op for in-memory journals).
    ///
    /// Crash-safe write: a kill mid-write must never leave a truncated
    /// journal (which a re-invoked run would refuse to parse). Write the
    /// full snapshot next to the journal, then atomically rename over it.
    pub fn flush(&self) {
        let Some(path) = &self.path else { return };
        let jobs: Vec<Json> = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("key", Json::from(e.key.clone())),
                    ("bench", Json::from(e.bench.clone())),
                    ("status", Json::from(e.status.as_str())),
                    ("code", Json::from(e.code as u64)),
                    ("attempts", Json::from(u64::from(e.attempts))),
                    ("message", Json::from(e.message.clone())),
                ];
                if e.data != Json::Null {
                    fields.push(("data", e.data.clone()));
                }
                Json::obj(fields)
            })
            .collect();
        let j = Json::obj([("version", Json::from(1u64)), ("jobs", Json::Arr(jobs))]);
        let tmp = PathBuf::from(format!("{}.tmp", path.display()));
        let write =
            std::fs::write(&tmp, j.pretty() + "\n").and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("journal write failed ({}): {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("plasticine-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entry(key: &str, status: JobStatus, data: Json) -> JournalEntry {
        JournalEntry {
            key: key.into(),
            bench: format!("bench-{key}"),
            status,
            code: 0,
            attempts: 1,
            message: "ok".into(),
            data,
        }
    }

    #[test]
    fn round_trips_entries_and_omits_null_data() {
        let path = scratch("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap();
        let mut j = Journal::load(Some(p)).unwrap();
        j.set(entry("a", JobStatus::Done, Json::Null));
        j.set(entry(
            "b",
            JobStatus::Infeasible,
            Json::obj([("why", Json::from("out of PCUs"))]),
        ));
        let text = std::fs::read_to_string(&path).unwrap();
        // Batch compatibility: entries without a payload keep the original
        // field set, so existing journal greps keep matching.
        assert!(!text.contains("\"data\"") || text.matches("\"data\"").count() == 1);
        // Release the writer lock before re-reading.
        drop(j);
        let re = Journal::load(Some(p)).unwrap();
        assert_eq!(re.entries().len(), 2);
        assert_eq!(re.find("a").unwrap().data, Json::Null);
        assert_eq!(re.find("a").unwrap().status, JobStatus::Done);
        assert_eq!(re.find("b").unwrap().status, JobStatus::Infeasible);
        assert_eq!(
            re.find("b").unwrap().data.get("why").and_then(Json::as_str),
            Some("out of PCUs")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn set_replaces_by_key() {
        let mut j = Journal::load(None).unwrap();
        j.set(entry("x", JobStatus::Running, Json::Null));
        j.set(entry("x", JobStatus::Done, Json::Null));
        assert_eq!(j.entries().len(), 1);
        assert_eq!(j.find("x").unwrap().status, JobStatus::Done);
    }

    #[test]
    fn second_live_writer_is_refused_and_stale_locks_reclaim() {
        let path = scratch("locked.json");
        let lock = scratch("locked.json.lock");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&lock);
        let p = path.to_str().unwrap();

        // Before the lock existed, this second load would silently become
        // a second writer and the two would overwrite each other's
        // snapshots; now it is a typed refusal naming the live pid.
        let first = Journal::load(Some(p)).unwrap();
        let err = Journal::load(Some(p)).unwrap_err();
        assert!(err.contains("locked by a live writer"), "{err}");
        assert!(err.contains(&std::process::id().to_string()), "{err}");

        // Dropping the holder releases the lock for the next writer.
        drop(first);
        assert!(!lock.exists(), "drop must remove the lockfile");
        let again = Journal::load(Some(p)).unwrap();
        drop(again);

        // A lockfile from a dead pid (crashed writer) is stale and
        // reclaimed, like the serve daemon's socket file. Pids are
        // capped at 2^22 on Linux, so u32::MAX can never be live.
        std::fs::write(&lock, "4294967295\n").unwrap();
        let reclaimed = Journal::load(Some(p)).unwrap();
        drop(reclaimed);

        // Unreadable lock contents are also stale, not a wedge.
        std::fs::write(&lock, "not-a-pid\n").unwrap();
        assert!(Journal::load(Some(p)).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn status_spellings_round_trip() {
        for s in [
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Infeasible,
        ] {
            assert_eq!(JobStatus::parse(s.as_str()), Ok(s));
        }
        assert!(JobStatus::parse("paused").is_err());
    }
}
