//! # plasticine — reproduction of *Plasticine: A Reconfigurable
//! Architecture For Parallel Patterns* (ISCA 2017)
//!
//! Facade crate re-exporting the whole stack:
//!
//! * [`ppir`] — the parallel-pattern programming model and reference
//!   interpreter (§2);
//! * [`arch`] — the parameterized architecture and configuration format
//!   (§3, Table 3);
//! * [`compiler`] — virtual units, partitioning, placement, routing
//!   (§3.6);
//! * [`dram`] — the DDR3 timing model and coalescing units (§3.4);
//! * [`sim`] — the cycle-accurate simulator (§4.2);
//! * [`models`] — area/power models and design-space exploration
//!   (§3.7, Tables 5–6, Figure 7);
//! * [`fpga`] — the analytic Stratix V baseline (§4.4);
//! * [`workloads`] — the thirteen Table 4 benchmarks.
//!
//! On top of the stack, [`service`] implements the crash-isolated
//! `plasticine-run serve` daemon: a long-lived compile/simulate server
//! with admission control, per-request deadlines, and graceful
//! degradation.
//!
//! See `examples/quickstart.rs` for the end-to-end flow.

#![warn(missing_docs)]

pub mod chaos;
pub mod dse;
pub mod journal;
pub mod service;

pub use plasticine_arch as arch;
pub use plasticine_compiler as compiler;
pub use plasticine_dram as dram;
pub use plasticine_fpga as fpga;
pub use plasticine_json as json;
pub use plasticine_models as models;
pub use plasticine_ppir as ppir;
pub use plasticine_sim as sim;
pub use plasticine_workloads as workloads;
