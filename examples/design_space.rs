//! Design-space exploration demo (§3.7 / Figure 7): sweeps the PCU stage
//! count and register count over the benchmark suite and prints the
//! benchmark-normalized area overheads, with `×` marking invalid points.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use plasticine::compiler::{build_virtual, Analysis};
use plasticine::models::dse::{average_row, sweep, PcuParamKind, SweepSpec};
use plasticine::models::AreaModel;
use plasticine::workloads::{all, Scale};

fn main() {
    // Build the virtual designs once (sizes don't affect unit shapes much,
    // so the tiny scale is fine for DSE).
    let apps: Vec<_> = all(Scale::tiny())
        .into_iter()
        .map(|b| {
            let an = Analysis::run(&b.program);
            let v = build_virtual(&b.program, &an);
            (b.name, v)
        })
        .collect();
    let model = AreaModel::new();

    for (spec, caption) in [
        (
            SweepSpec {
                target: PcuParamKind::Stages,
                values: (4..=16).collect(),
                fixed: vec![],
            },
            "Stages per PCU (Figure 7a)",
        ),
        (
            SweepSpec {
                target: PcuParamKind::Regs,
                values: (2..=16).collect(),
                fixed: vec![(PcuParamKind::Stages, 6)],
            },
            "Registers per FU with 6 stages (Figure 7b)",
        ),
    ] {
        println!("\n=== {caption} ===");
        print!("{:<14}", "Benchmark");
        for v in &spec.values {
            print!("{v:>6}");
        }
        println!();
        let rows = sweep(&apps, &spec, &model);
        for row in &rows {
            print!("{:<14}", row.app);
            for p in &row.points {
                match p.overhead {
                    Some(o) => print!("{:>5.0}%", 100.0 * o),
                    None => print!("{:>6}", "x"),
                }
            }
            println!();
        }
        print!("{:<14}", "Average");
        for p in average_row(&rows) {
            match p.overhead {
                Some(o) => print!("{:>5.0}%", 100.0 * o),
                None => print!("{:>6}", "x"),
            }
        }
        println!();
    }
}
