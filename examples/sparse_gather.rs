//! Sparse-access deep dive: runs PageRank and BFS and reports how the
//! address coalescing units (§3.4) merge element-granularity gathers and
//! scatters into DRAM bursts, plus the DRAM row-buffer behaviour.
//!
//! ```sh
//! cargo run --release --example sparse_gather
//! ```

use plasticine::arch::PlasticineParams;
use plasticine::compiler::compile;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{sparse, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PlasticineParams::paper_final();
    for bench in [
        sparse::pagerank(Scale::small()),
        sparse::bfs(Scale::small()),
    ] {
        let out = compile(&bench.program, &params)?;
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())?;
        bench.verify(&m).map_err(std::io::Error::other)?;

        println!("== {} ==", bench.name);
        println!("  cycles:                {}", r.cycles);
        println!(
            "  sparse element reqs:   {} ({} gathers+scatters merged into {} DRAM lines)",
            r.coalesce.elem_requests, r.coalesce.merged, r.coalesce.line_requests
        );
        let merge_ratio = r.coalesce.elem_requests as f64 / r.coalesce.line_requests.max(1) as f64;
        println!("  coalescing ratio:      {merge_ratio:.2} elements/line");
        println!(
            "  DRAM: {} reads, {} writes, {} row hits, {} activates ({:.0}% hit rate)",
            r.dram.reads,
            r.dram.writes,
            r.dram.row_hits,
            r.dram.activates,
            100.0 * r.dram.row_hits as f64 / (r.dram.row_hits + r.dram.activates).max(1) as f64,
        );
        println!("  bandwidth achieved:    {:.1} GB/s\n", r.dram_gbps(1.0));
    }
    println!("both sparse benchmarks verified ✓");
    Ok(())
}
