//! Runs the full Table 4 benchmark suite end-to-end — compile, simulate,
//! verify — and prints a Table 7-style summary including the FPGA baseline
//! comparison.
//!
//! ```sh
//! cargo run --release --example benchmark_suite
//! ```

use plasticine::arch::PlasticineParams;
use plasticine::compiler::compile;
use plasticine::fpga::FpgaModel;
use plasticine::models::PowerModel;
use plasticine::ppir::Machine;
use plasticine::sim::{simulate, SimOptions};
use plasticine::workloads::{all, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = PlasticineParams::paper_final();
    let power_model = PowerModel::new();
    let fpga = FpgaModel::new();

    println!(
        "{:<14} {:>10} {:>7} {:>7} {:>7} {:>8} {:>9} {:>9}",
        "Benchmark", "Cycles", "PCU%", "PMU%", "FU%", "Watts", "Speedup", "Perf/W"
    );
    for bench in all(Scale::tiny()) {
        let out = compile(&bench.program, &params)?;
        let mut m = Machine::new(&bench.program);
        bench.load(&mut m);
        let r = simulate(&bench.program, &out, &mut m, &SimOptions::default())?;
        bench.verify(&m).map_err(std::io::Error::other)?;

        let (pcu_u, pmu_u, _) = out.config.utilization();
        let fu = r.fu_utilization(&out.config);
        let p = power_model.estimate(&r, &out.config);
        let fe = fpga.estimate(&bench.fpga);
        let plasticine_s = r.seconds(params.clock_ghz);
        let speedup = fe.seconds / plasticine_s;
        let perf_per_watt = speedup * fe.power_w / p.total_w;
        println!(
            "{:<14} {:>10} {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1} {:>8.1}x {:>8.1}x",
            bench.name,
            r.cycles,
            100.0 * pcu_u,
            100.0 * pmu_u,
            100.0 * fu,
            p.total_w,
            speedup,
            perf_per_watt,
        );
    }
    println!("\nall benchmarks verified against host goldens ✓");
    Ok(())
}
