//! Quickstart: write a parallel-pattern program, compile it onto the
//! paper-final Plasticine configuration, and simulate it cycle-accurately.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use plasticine::arch::PlasticineParams;
use plasticine::compiler::compile;
use plasticine::models::PowerModel;
use plasticine::ppir::*;
use plasticine::sim::{simulate, SimOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Write a program: tiled SAXPY (y = a*x + y) ----
    let n = 4096usize;
    let tile = 512usize;
    let mut b = ProgramBuilder::new("saxpy");
    let d_x = b.dram("x", DType::F32, n);
    let d_y = b.dram("y", DType::F32, n);
    let d_out = b.dram("out", DType::F32, n);
    let s_x = b.sram("tx", DType::F32, &[tile]);
    let s_y = b.sram("ty", DType::F32, &[tile]);
    let s_o = b.sram("to", DType::F32, &[tile]);

    // Outer tile loop, coarse-grain pipelined and unrolled twice.
    let t = b.counter(0, (n / tile) as i64, 1, 2);
    let mut base = Func::new("base");
    let ti = base.index(t.index);
    let tl = base.konst(Elem::I32(tile as i32));
    let off = base.binary(BinOp::Mul, ti, tl);
    base.set_outputs(vec![off]);
    let base = b.func(base);

    let ld_x = b.inner(
        "ld_x",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_x,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_x,
        }),
    );
    let ld_y = b.inner(
        "ld_y",
        vec![],
        InnerOp::LoadTile(TileTransfer {
            dram: d_y,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_y,
        }),
    );

    // Inner Map across 16 SIMD lanes: out[i] = 2.5 * x[i] + y[i].
    let i = b.counter(0, tile as i64, 1, 16);
    let mut body = Func::new("saxpy");
    let iv = body.index(i.index);
    let xv = body.load(s_x, vec![iv]);
    let yv = body.load(s_y, vec![iv]);
    let a = body.konst(Elem::F32(2.5));
    let ax = body.binary(BinOp::Mul, a, xv);
    let r = body.binary(BinOp::Add, ax, yv);
    body.set_outputs(vec![r]);
    let body = b.func(body);
    let mut waddr = Func::new("waddr");
    let iv = waddr.index(i.index);
    waddr.set_outputs(vec![iv]);
    let waddr = b.func(waddr);
    let compute = b.inner(
        "saxpy",
        vec![i],
        InnerOp::Map(MapPipe {
            body,
            writes: vec![PipeWrite {
                sram: s_o,
                addr: waddr,
                value_slot: 0,
                mode: WriteMode::Overwrite,
            }],
        }),
    );
    let st = b.inner(
        "st_out",
        vec![],
        InnerOp::StoreTile(TileTransfer {
            dram: d_out,
            dram_base: base,
            rows: 1,
            cols: tile,
            dram_row_stride: tile,
            sram: s_o,
        }),
    );
    let tiles = b.outer(
        "tiles",
        Schedule::Pipelined,
        vec![t],
        vec![ld_x, ld_y, compute, st],
    );
    let root = b.outer("root", Schedule::Sequential, vec![], vec![tiles]);
    let program = b.finish(root)?;

    // ---- 2. Compile onto the paper-final 16×8 chip ----
    let params = PlasticineParams::paper_final();
    let out = compile(&program, &params)?;
    let (pcu_u, pmu_u, ag_u) = out.config.utilization();
    println!("compiled `{}`:", program.name());
    println!(
        "  units: {} PCUs, {} PMUs, {} AGs  (utilization {:.1}% / {:.1}% / {:.1}%)",
        out.config.usage.pcus,
        out.config.usage.pmus,
        out.config.usage.ags,
        100.0 * pcu_u,
        100.0 * pmu_u,
        100.0 * ag_u,
    );
    println!("  links routed: {}", out.config.links.len());

    // ---- 3. Load data and simulate ----
    let mut m = Machine::new(&program);
    let x: Vec<Elem> = (0..n).map(|i| Elem::F32(i as f32)).collect();
    let y: Vec<Elem> = (0..n).map(|i| Elem::F32(1000.0 + i as f32)).collect();
    m.write_dram(d_x, &x);
    m.write_dram(d_y, &y);
    let result = simulate(&program, &out, &mut m, &SimOptions::default())?;

    // ---- 4. Inspect results ----
    for i in [0usize, 1, n - 1] {
        let got = m.dram_data(d_out)[i].as_f32()?;
        assert_eq!(got, 2.5 * i as f32 + (1000.0 + i as f32));
    }
    let power = PowerModel::new().estimate(&result, &out.config);
    println!(
        "  simulated: {} cycles ({:.2} µs at 1 GHz), {:.1} GB/s DRAM, {:.1} W",
        result.cycles,
        result.seconds(1.0) * 1e6,
        result.dram_gbps(1.0),
        power.total_w,
    );
    println!("  verified: out[i] == 2.5*x[i] + y[i] ✓");
    Ok(())
}
